//! Sharded store roots: N single stores behind one directory, routed by
//! `node_id % N`.
//!
//! ```text
//! ROOT/
//!   MANIFEST        PANESTR1 manifest: `shards N`
//!   shard-000/      a complete single store (see `store`)
//!   shard-001/
//!   …
//! ```
//!
//! Global node ids are round-robin partitioned: global id `g` lives in
//! shard `g % N` at local id `g / N` ([`shard_of`] / [`local_of`] /
//! [`global_of`]). The partition is *dense per shard*: after any prefix
//! of global inserts, shard sizes differ by at most one, and
//! [`ShardedStore::open`] verifies the invariant so a shard directory
//! swapped in from elsewhere fails the open instead of mis-routing ids.
//!
//! The query-side top-k merge across shards lives in `pane-serve`
//! (`ShardedEngine`); this module owns the directory layout and the
//! id arithmetic, so the two cannot disagree on routing.

use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::store::{OpenStore, Store, StoreStatus};
use crate::StoreError;
use pane_core::{PaneEmbedding, PaneTimings};
use pane_index::IndexSpec;
use pane_linalg::DenseMatrix;
use std::path::{Path, PathBuf};

/// Shard that owns global node id `g` under an `N`-way store.
pub fn shard_of(global: usize, shards: usize) -> usize {
    global % shards
}

/// Local (within-shard) id of global node id `g` under an `N`-way store.
pub fn local_of(global: usize, shards: usize) -> usize {
    global / shards
}

/// Global node id of local id `l` in shard `s` under an `N`-way store.
pub fn global_of(shard: usize, local: usize, shards: usize) -> usize {
    local * shards + shard
}

/// Directory of shard `s` under `root`.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Number of nodes a balanced round-robin partition places in shard `s`
/// out of `n` total across `shards` shards.
pub fn expected_shard_len(n: usize, shard: usize, shards: usize) -> usize {
    (n + shards - 1 - shard) / shards
}

/// A sharded store root. The type is a namespace: open/init return the
/// per-shard [`OpenStore`]s for the serving layer to wrap.
#[derive(Debug)]
pub struct ShardedStore;

impl ShardedStore {
    /// Initializes `root` as an `shards`-way sharded store: the embedding
    /// is round-robin split (global id `g` → shard `g % shards`), each
    /// shard becomes a complete single store (its own generation + WAL),
    /// and the root manifest records the shard count.
    ///
    /// The attribute matrix `Y` is replicated into every shard — link
    /// queries need the full `YᵀY` Gram regardless of which shard owns
    /// the source node, and `Y` is `d × k/2`, not per-node state.
    pub fn init(
        root: &Path,
        emb: &PaneEmbedding,
        node_spec: &IndexSpec,
        link_spec: &IndexSpec,
        shards: usize,
        threads: usize,
    ) -> Result<(), StoreError> {
        Self::init_with_format(
            root,
            emb,
            node_spec,
            link_spec,
            shards,
            threads,
            crate::ArtifactFormat::Columnar,
        )
    }

    /// [`ShardedStore::init`] with an explicit artifact format for every
    /// shard (see [`Store::init_with_format`]).
    #[allow(clippy::too_many_arguments)]
    pub fn init_with_format(
        root: &Path,
        emb: &PaneEmbedding,
        node_spec: &IndexSpec,
        link_spec: &IndexSpec,
        shards: usize,
        threads: usize,
        format: crate::ArtifactFormat,
    ) -> Result<(), StoreError> {
        let n = emb.forward.rows();
        if shards < 2 {
            return Err(StoreError::Format(format!(
                "sharded init needs at least 2 shards, got {shards}"
            )));
        }
        if n < shards {
            return Err(StoreError::Format(format!(
                "cannot split {n} nodes across {shards} shards (every shard needs a node)"
            )));
        }
        std::fs::create_dir_all(root)?;
        if root.join(MANIFEST_FILE).exists() {
            return Err(StoreError::Format(format!(
                "{} already holds a store (MANIFEST exists); refusing to overwrite",
                root.display()
            )));
        }
        let k2 = emb.forward.cols();
        for s in 0..shards {
            let rows = expected_shard_len(n, s, shards);
            let mut forward = DenseMatrix::zeros(rows, k2);
            let mut backward = DenseMatrix::zeros(rows, k2);
            for local in 0..rows {
                let g = global_of(s, local, shards);
                forward.row_mut(local).copy_from_slice(emb.forward.row(g));
                backward.row_mut(local).copy_from_slice(emb.backward.row(g));
            }
            let shard_emb = PaneEmbedding {
                forward,
                backward,
                attribute: emb.attribute.clone(),
                timings: PaneTimings::default(),
                objective: f64::NAN,
            };
            Store::init_with_format(
                &shard_dir(root, s),
                &shard_emb,
                node_spec,
                link_spec,
                threads,
                format,
            )?;
        }
        Manifest::Sharded { shards }.write(root)?;
        Ok(())
    }

    /// Reads the root manifest: `Some(n)` for a sharded root, `None` for
    /// a single store (errors pass through).
    pub fn shard_count(root: &Path) -> Result<Option<usize>, StoreError> {
        match Manifest::read(root)? {
            Manifest::Sharded { shards } => Ok(Some(shards)),
            Manifest::Single { .. } => Ok(None),
        }
    }

    /// Opens every shard of a sharded root (replaying each shard's WAL)
    /// and validates the round-robin balance invariant and a consistent
    /// `k/2` across shards.
    pub fn open(root: &Path) -> Result<Vec<OpenStore>, StoreError> {
        let shards = match Manifest::read(root)? {
            Manifest::Sharded { shards } => shards,
            Manifest::Single { .. } => {
                return Err(StoreError::Format(format!(
                    "{} is a single store, not a sharded root",
                    root.display()
                )))
            }
        };
        let mut opened = Vec::with_capacity(shards);
        for s in 0..shards {
            opened.push(Store::open(&shard_dir(root, s))?);
        }
        let k2 = opened[0].embedding.forward.cols();
        let n: usize = opened.iter().map(|o| o.embedding.forward.rows()).sum();
        for (s, o) in opened.iter().enumerate() {
            if o.embedding.forward.cols() != k2 {
                return Err(StoreError::Format(format!(
                    "shard {s} holds k/2 = {} but shard 0 holds {k2}",
                    o.embedding.forward.cols()
                )));
            }
            let want = expected_shard_len(n, s, shards);
            let got = o.embedding.forward.rows();
            if got != want {
                return Err(StoreError::Format(format!(
                    "shard {s} holds {got} nodes but a balanced {shards}-way split of {n} \
                     requires {want} — the shards do not form one round-robin partition"
                )));
            }
        }
        Ok(opened)
    }

    /// Migrates every shard of a sharded root to the columnar format
    /// (see [`crate::migrate`]); shards already columnar are no-ops, so
    /// an interrupted run is safely resumable.
    pub fn migrate(root: &Path) -> Result<Vec<crate::MigrateReport>, StoreError> {
        let shards = match Manifest::read(root)? {
            Manifest::Sharded { shards } => shards,
            Manifest::Single { .. } => {
                return Err(StoreError::Format(format!(
                    "{} is a single store, not a sharded root",
                    root.display()
                )))
            }
        };
        (0..shards)
            .map(|s| crate::migrate(&shard_dir(root, s)))
            .collect()
    }

    /// Offline status of every shard (see [`crate::read_status`]).
    pub fn read_status(root: &Path) -> Result<Vec<StoreStatus>, StoreError> {
        let shards = match Manifest::read(root)? {
            Manifest::Sharded { shards } => shards,
            Manifest::Single { .. } => {
                return Err(StoreError::Format(format!(
                    "{} is a single store, not a sharded root",
                    root.display()
                )))
            }
        };
        (0..shards)
            .map(|s| crate::read_status(&shard_dir(root, s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::{fixture, tmpdir};

    #[test]
    fn id_arithmetic_is_a_bijection() {
        for shards in [2usize, 3, 5] {
            for g in 0..40 {
                let (s, l) = (shard_of(g, shards), local_of(g, shards));
                assert!(s < shards);
                assert_eq!(global_of(s, l, shards), g);
            }
            let n = 23;
            let total: usize = (0..shards).map(|s| expected_shard_len(n, s, shards)).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn sharded_init_open_partitions_round_robin() {
        let root = tmpdir("shard_rr");
        let emb = fixture(45, 8);
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 3, 2).unwrap();
        assert_eq!(ShardedStore::shard_count(&root).unwrap(), Some(3));
        let opened = ShardedStore::open(&root).unwrap();
        assert_eq!(opened.len(), 3);
        assert_eq!(opened[0].embedding.forward.rows(), 15);
        // Row content: shard s local l is global l*3+s, bit-for-bit.
        for (s, o) in opened.iter().enumerate() {
            for local in 0..o.embedding.forward.rows() {
                let g = global_of(s, local, 3);
                assert_eq!(o.embedding.forward.row(local), emb.forward.row(g));
                assert_eq!(o.embedding.backward.row(local), emb.backward.row(g));
            }
            assert_eq!(o.embedding.attribute.data(), emb.attribute.data());
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unbalanced_shards_fail_the_open() {
        let root = tmpdir("shard_unbal");
        let emb = fixture(20, 4);
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2, 1).unwrap();
        // Grow shard 1 behind the root's back: the invariant breaks.
        let mut s1 = Store::open(&shard_dir(&root, 1)).unwrap();
        let k2 = s1.embedding.forward.cols();
        s1.store.append(10, &vec![0.5; k2], &vec![0.5; k2]).unwrap();
        drop(s1);
        match ShardedStore::open(&root) {
            Err(StoreError::Format(m)) => assert!(m.contains("round-robin"), "{m}"),
            other => panic!("expected balance error, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_migrate_rewrites_every_shard() {
        let root = tmpdir("shard_migrate");
        let emb = fixture(30, 12);
        let shards = 2;
        ShardedStore::init_with_format(
            &root,
            &emb,
            &IndexSpec::Flat,
            &IndexSpec::Flat,
            shards,
            1,
            crate::ArtifactFormat::Legacy,
        )
        .unwrap();
        for s in ShardedStore::read_status(&root).unwrap() {
            assert_eq!(s.format, crate::ArtifactFormat::Legacy);
        }

        let reports = ShardedStore::migrate(&root).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.migrated));
        for s in ShardedStore::read_status(&root).unwrap() {
            assert_eq!(s.format, crate::ArtifactFormat::Columnar);
        }
        // The partition still opens and routes identically.
        let opened = ShardedStore::open(&root).unwrap();
        assert_eq!(opened.len(), 2);
        for (s, o) in opened.iter().enumerate() {
            for local in 0..o.embedding.forward.rows() {
                let g = global_of(s, local, shards);
                assert_eq!(o.embedding.forward.row(local), emb.forward.row(g));
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn single_store_and_sharded_root_are_distinguished() {
        let root = tmpdir("shard_kind");
        let emb = fixture(20, 6);
        Store::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        assert_eq!(ShardedStore::shard_count(&root).unwrap(), None);
        assert!(matches!(
            ShardedStore::open(&root),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_dir_all(&root).ok();
    }
}
