#![deny(missing_docs)]
//! `pane-store` — the unified durable store layer under `pane serve`.
//!
//! Before this crate, persistence lived in three places: `pane-core`
//! saved embeddings, `pane-index` saved index structures, and the
//! serving engine held grown rows only in memory — a daemon restart lost
//! every insert since boot. `pane-store` owns the durability story as
//! one versioned on-disk **store directory** (the LogBase shape from
//! PAPERS.md: an append log over immutable bases):
//!
//! * **immutable base artifacts** per generation — the embedding plus
//!   the node/link index pair, all in `gen-<g>/`, never modified after
//!   the manifest commits to them. New generations are written as
//!   columnar `PANECOL1` containers (`pane-format`); stores created by
//!   older builds hold legacy `PANEEMB1`/`PANEIDX1` streams, which every
//!   reader still accepts and [`migrate`] rewrites forward in place;
//! * the **insert-ahead log** ([`wal`], `PANEWAL1`) — length-prefixed,
//!   checksummed records of new `X_f`/`X_b` row pairs, synced *before*
//!   an insert is acknowledged, replayed into delta segments at
//!   [`Store::open`] — restarts keep every acknowledged insert;
//! * the **manifest** ([`manifest`], `PANESTR1`) — names the current
//!   generation; replaced by atomic rename, so a [`Store::snapshot`]
//!   (write new generation → swing manifest → truncate WAL) is
//!   crash-safe at every step;
//! * **sharded roots** ([`shard`]) — N store directories routed by
//!   `node_id % N`, the layout behind `pane serve`'s single-process
//!   sharding and a future multi-daemon deployment.
//!
//! The serving layer (`pane-serve`) wraps [`OpenStore`] in its engine;
//! the CLI surfaces the layer as `pane store init | snapshot | status`.

pub mod manifest;
pub mod shard;
mod store;
pub mod wal;

#[cfg(test)]
mod proptests;

pub use manifest::{ArtifactFormat, Manifest, MANIFEST_FILE};
pub use shard::{expected_shard_len, global_of, local_of, shard_dir, shard_of, ShardedStore};
pub use store::{
    build_bases, migrate, read_status, MigrateReport, OpenStore, Store, StoreStatus,
    EMBEDDING_FILE, LINK_INDEX_FILE, NODE_INDEX_FILE, WAL_FILE,
};
pub use wal::{replay as replay_wal, Wal, WalAppend, WalRecord, WalReplay, WAL_MAGIC};

/// Errors from the durable store layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A store file (manifest, layout, header) is malformed.
    Format(String),
    /// The insert-ahead log is structurally inconsistent with the base
    /// generation (wrong width, wrong id sequence) — it does not belong
    /// to this store.
    Wal(String),
    /// The embedding artifact failed to load/save.
    Persist(pane_core::PersistError),
    /// An index artifact failed to build/load/save.
    Index(pane_index::IndexError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Format(m) => write!(f, "store format error: {m}"),
            StoreError::Wal(m) => write!(f, "insert-ahead log error: {m}"),
            StoreError::Persist(e) => write!(f, "embedding artifact error: {e}"),
            StoreError::Index(e) => write!(f, "index artifact error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<pane_core::PersistError> for StoreError {
    fn from(e: pane_core::PersistError) -> Self {
        StoreError::Persist(e)
    }
}

impl From<pane_index::IndexError> for StoreError {
    fn from(e: pane_index::IndexError) -> Self {
        StoreError::Index(e)
    }
}

impl From<pane_format::FormatError> for StoreError {
    fn from(e: pane_format::FormatError) -> Self {
        match e {
            pane_format::FormatError::Io(e) => StoreError::Io(e),
            pane_format::FormatError::Format(m) => StoreError::Format(m),
        }
    }
}
