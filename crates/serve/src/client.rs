//! JSON-lines client for one shard daemon — the router's view of a
//! `pane serve` process.
//!
//! [`ShardClient`] owns one pooled connection to one daemon and answers
//! three questions the router cares about:
//!
//! * **transport** — one request line out, one response line back,
//!   bounded by the same [`crate::server::MAX_LINE_BYTES`] cap the
//!   server enforces, with connect and read/write timeouts so a hung
//!   shard cannot stall the router;
//! * **retry** — idempotent requests (queries, stats) get a bounded
//!   retry with exponential backoff; non-idempotent requests (insert)
//!   are **at-most-once**: only a failure to *connect* is retried —
//!   once request bytes may have reached the daemon, a transport error
//!   becomes [`ClientError::OutcomeUnknown`] so the caller can resync
//!   instead of double-applying;
//! * **health** — after retries are exhausted the shard is marked
//!   *down*; while down, requests fail fast with [`ClientError::Down`]
//!   without touching the network, except one probe per
//!   [`ClientConfig::probe_interval`] (and the router's health-check
//!   thread calling [`ShardClient::probe`]), so a restarted daemon is
//!   picked back up automatically.

use crate::obs::ClientObs;
use crate::protocol::{parse, Json};
use crate::server::{read_bounded_line, LineRead, MAX_LINE_BYTES};
use pane_obs::Level;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How the client waits out a retry backoff. The default is a real
/// [`std::thread::sleep`]; tests (and anything else that needs
/// deterministic timing) inject a recording or no-op closure instead,
/// so backoff *schedules* stay pinned without wall-clock sleeps.
pub type SleepFn = Arc<dyn Fn(Duration) + Send + Sync>;

/// Tunables for one shard connection. The defaults suit daemons on the
/// same host or rack; a WAN deployment raises the timeouts.
#[derive(Clone)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read/write timeout for one request/response round trip.
    pub request_timeout: Duration,
    /// Extra attempts after the first failure (idempotent requests; for
    /// non-idempotent requests only connect failures consume these).
    pub retries: usize,
    /// Backoff before the first retry; doubles each further retry.
    pub backoff: Duration,
    /// While a shard is down, at most one request per interval actually
    /// probes the network; the rest fail fast with [`ClientError::Down`].
    pub probe_interval: Duration,
    /// Injected clock for retry backoff (defaults to a real sleep).
    pub sleep: SleepFn,
}

impl std::fmt::Debug for ClientConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientConfig")
            .field("connect_timeout", &self.connect_timeout)
            .field("request_timeout", &self.request_timeout)
            .field("retries", &self.retries)
            .field("backoff", &self.backoff)
            .field("probe_interval", &self.probe_interval)
            .finish_non_exhaustive()
    }
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            retries: 2,
            backoff: Duration::from_millis(50),
            probe_interval: Duration::from_secs(2),
            sleep: Arc::new(std::thread::sleep),
        }
    }
}

/// Why a shard request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The shard is marked down and the probe interval has not elapsed;
    /// the request never touched the network.
    Down(String),
    /// Transport failure after exhausting retries (the shard is now
    /// marked down).
    Io(String),
    /// The daemon answered, but with bytes that are not a protocol
    /// response.
    Protocol(String),
    /// The daemon answered `{"ok":false,…}` — the shard is healthy, the
    /// request was bad. Carries the daemon's error message.
    Remote(String),
    /// A non-idempotent request failed *after* its bytes may have
    /// reached the daemon: it may or may not have been applied. The
    /// caller must resync (e.g. re-read `stats`) before assuming either.
    OutcomeUnknown(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Down(addr) => write!(f, "shard {addr} is down"),
            ClientError::Io(m) => write!(f, "shard transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "shard protocol error: {m}"),
            ClientError::Remote(m) => write!(f, "shard error: {m}"),
            ClientError::OutcomeUnknown(m) => {
                write!(f, "request outcome unknown (resync required): {m}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct ClientState {
    conn: Option<Conn>,
    down_since: Option<Instant>,
    last_attempt: Option<Instant>,
}

/// One pooled, timeout-guarded, health-tracked connection to one shard
/// daemon. See the [module docs](self) for the retry and down-state
/// semantics. All methods take `&self`; requests to the *same* shard are
/// serialized by an internal lock (the router's parallelism is across
/// shards).
pub struct ShardClient {
    addr: String,
    config: ClientConfig,
    state: Mutex<ClientState>,
    /// Instrumentation handles (no-op unless built by a router with
    /// observability attached).
    obs: Arc<ClientObs>,
}

impl ShardClient {
    /// A client for the daemon at `addr` (e.g. `"127.0.0.1:7878"`).
    /// Connects lazily on first use.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        Self::with_obs(addr, config, ClientObs::noop())
    }

    /// A client with registered instrumentation handles (what the router
    /// builds, one labeled set per shard).
    pub(crate) fn with_obs(
        addr: impl Into<String>,
        config: ClientConfig,
        obs: Arc<ClientObs>,
    ) -> Self {
        Self {
            addr: addr.into(),
            config,
            state: Mutex::new(ClientState {
                conn: None,
                down_since: None,
                last_attempt: None,
            }),
            obs,
        }
    }

    /// The daemon address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the shard is currently marked down.
    pub fn is_down(&self) -> bool {
        self.lock().down_since.is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClientState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn connect(&self) -> std::io::Result<Conn> {
        let mut last = std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("'{}' resolved to no addresses", self.addr),
        );
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.config.request_timeout))?;
                    stream.set_write_timeout(Some(self.config.request_timeout))?;
                    stream.set_nodelay(true).ok();
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Conn {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn roundtrip(conn: &mut Conn, line: &str) -> std::io::Result<String> {
        conn.writer.write_all(line.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;
        let mut buf = Vec::new();
        match read_bounded_line(&mut conn.reader, &mut buf, MAX_LINE_BYTES)? {
            LineRead::Line => String::from_utf8(buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "response is not UTF-8")
            }),
            LineRead::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            )),
            LineRead::TooLong => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response line exceeds {MAX_LINE_BYTES} bytes"),
            )),
        }
    }

    fn finish(&self, resp: String) -> Result<Json, ClientError> {
        let v = parse(&resp).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("ok") {
            Some(&Json::Bool(true)) => Ok(v),
            Some(&Json::Bool(false)) => {
                let msg = v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string();
                Err(ClientError::Remote(msg))
            }
            _ => Err(ClientError::Protocol(
                "response is missing a boolean 'ok' field".into(),
            )),
        }
    }

    /// Sends an **idempotent** request (query / stats / snapshot …) with
    /// bounded retry; exhausting retries marks the shard down.
    pub fn request(&self, line: &str) -> Result<Json, ClientError> {
        self.send(line, true, false)
    }

    /// Sends a **non-idempotent** request (insert) at most once: connect
    /// failures are retried, but once bytes may have reached the daemon
    /// a failure is [`ClientError::OutcomeUnknown`].
    pub fn request_once(&self, line: &str) -> Result<Json, ClientError> {
        self.send(line, false, false)
    }

    /// Forces one health probe (`stats`) even while marked down — what
    /// the router's health-check thread calls. Returns `true` if the
    /// shard answered.
    pub fn probe(&self) -> bool {
        self.obs.probes.inc();
        self.send(r#"{"op":"stats"}"#, true, true).is_ok()
    }

    fn send(&self, line: &str, idempotent: bool, force: bool) -> Result<Json, ClientError> {
        let mut st = self.lock();
        if !force && st.down_since.is_some() {
            let probed_recently = st
                .last_attempt
                .is_some_and(|t| t.elapsed() < self.config.probe_interval);
            if probed_recently {
                return Err(ClientError::Down(self.addr.clone()));
            }
        }
        let mut last_io = String::new();
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                self.obs.retries.inc();
                self.obs
                    .tracer
                    .event(Level::Debug, "shard.retry")
                    .str_field("addr", &self.addr)
                    .int_field("attempt", attempt as u64)
                    .emit();
                (self.config.sleep)(self.config.backoff * (1u32 << (attempt - 1).min(16)));
            }
            let mut conn = match st.conn.take() {
                Some(c) => c,
                None => {
                    st.last_attempt = Some(Instant::now());
                    match self.connect() {
                        Ok(c) => {
                            self.obs.connects.inc();
                            c
                        }
                        Err(e) => {
                            // Connect failures are retriable even for
                            // non-idempotent requests: nothing was sent.
                            self.obs.connect_failures.inc();
                            last_io = format!("connect {}: {e}", self.addr);
                            continue;
                        }
                    }
                }
            };
            match Self::roundtrip(&mut conn, line) {
                Ok(resp) => {
                    st.conn = Some(conn);
                    if st.down_since.take().is_some() {
                        self.obs.up.set(1);
                        self.obs
                            .tracer
                            .event(Level::Info, "shard.up")
                            .str_field("addr", &self.addr)
                            .emit();
                    }
                    return self.finish(resp);
                }
                Err(e) => {
                    // The connection is dead either way; drop it.
                    last_io = format!("{}: {e}", self.addr);
                    if !idempotent {
                        // Bytes may have reached the daemon — the insert
                        // may have been applied. Do not mark the shard
                        // down (it may be healthy with a stale pooled
                        // connection); let the caller resync.
                        self.obs.outcome_unknown.inc();
                        return Err(ClientError::OutcomeUnknown(last_io));
                    }
                }
            }
        }
        if st.down_since.is_none() {
            st.down_since = Some(Instant::now());
            self.obs.down_transitions.inc();
            self.obs.up.set(0);
            self.obs
                .tracer
                .event(Level::Warn, "shard.down")
                .str_field("addr", &self.addr)
                .str_field("error", &last_io)
                .emit();
        }
        Err(ClientError::Io(last_io))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    fn config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            retries: 1,
            backoff: Duration::from_millis(5),
            probe_interval: Duration::from_millis(100),
            // Tests never pay a real backoff; schedules are asserted via
            // a recording sleeper where the timing itself is under test.
            sleep: Arc::new(|_| {}),
        }
    }

    /// A one-line echo daemon: answers each request line with `reply`.
    fn tiny_daemon(replies: Vec<String>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            for reply in replies {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let mut w = &stream;
                w.write_all(reply.as_bytes()).unwrap();
                w.write_all(b"\n").unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn ok_and_remote_error_responses_are_distinguished() {
        let (addr, handle) = tiny_daemon(vec![
            r#"{"ok":true,"op":"stats","nodes":7}"#.into(),
            r#"{"ok":false,"error":"nope"}"#.into(),
        ]);
        let client = ShardClient::new(addr.to_string(), config());
        let v = client.request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(v.get("nodes").unwrap().as_index(), Some(7));
        match client.request(r#"{"op":"bad"}"#) {
            Err(ClientError::Remote(m)) => assert_eq!(m, "nope"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(!client.is_down(), "a remote error is not a health failure");
        handle.join().unwrap();
    }

    #[test]
    fn retry_backoff_schedule_doubles_and_is_injected_not_slept() {
        // Bind-then-drop gives an address nothing listens on: every
        // attempt fails to connect, so all retries (and their backoffs)
        // are consumed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = Arc::clone(&slept);
        let client = ShardClient::new(
            addr.to_string(),
            ClientConfig {
                retries: 3,
                backoff: Duration::from_millis(5),
                sleep: Arc::new(move |d| recorder.lock().unwrap().push(d)),
                ..config()
            },
        );
        let t = Instant::now();
        assert!(matches!(
            client.request(r#"{"op":"stats"}"#),
            Err(ClientError::Io(_))
        ));
        // 3 retries → backoffs of 5, 10, 20 ms handed to the hook —
        // and none of that time actually elapsed.
        assert_eq!(
            *slept.lock().unwrap(),
            vec![
                Duration::from_millis(5),
                Duration::from_millis(10),
                Duration::from_millis(20),
            ]
        );
        assert!(
            t.elapsed() < Duration::from_millis(35),
            "injected backoff must not sleep for real"
        );
    }

    #[test]
    fn unreachable_shard_goes_down_then_fails_fast() {
        // Bind-then-drop gives an address nothing listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = ShardClient::new(addr.to_string(), config());
        match client.request(r#"{"op":"stats"}"#) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(client.is_down());
        // Within the probe interval the failure is instant and networkless.
        let t = Instant::now();
        assert!(matches!(
            client.request(r#"{"op":"stats"}"#),
            Err(ClientError::Down(_))
        ));
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn torn_connection_on_idempotent_request_is_retried_on_a_fresh_one() {
        // First daemon serves one request then closes; the pooled
        // connection is stale by the second request, which must succeed
        // on a reconnect. Use a listener that accepts twice.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    continue;
                }
                let mut w = &stream;
                w.write_all(b"{\"ok\":true,\"op\":\"stats\"}\n").unwrap();
                // Connection drops here (end of scope).
            }
        });
        let client = ShardClient::new(addr.to_string(), config());
        client.request(r#"{"op":"stats"}"#).unwrap();
        // The daemon closed the pooled connection; the retry reconnects.
        client.request(r#"{"op":"stats"}"#).unwrap();
        assert!(!client.is_down());
        handle.join().unwrap();
    }

    #[test]
    fn insert_on_a_stale_connection_is_outcome_unknown_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut w = &stream;
            w.write_all(b"{\"ok\":true,\"op\":\"stats\"}\n").unwrap();
            // Close without reading further: the next request dies
            // mid-flight, after its bytes may have arrived.
        });
        let client = ShardClient::new(addr.to_string(), config());
        client.request(r#"{"op":"stats"}"#).unwrap();
        handle.join().unwrap();
        match client.request_once(r#"{"op":"insert","forward":[0.1],"backward":[0.1]}"#) {
            Err(ClientError::OutcomeUnknown(_)) => {}
            other => panic!("expected OutcomeUnknown, got {other:?}"),
        }
        assert!(
            !client.is_down(),
            "outcome-unknown must not mark the shard down"
        );
    }
}
