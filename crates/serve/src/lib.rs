#![deny(missing_docs)]
//! `pane-serve` — the shared-index serving daemon behind `pane serve`.
//!
//! PR 2 gave every *caller* an ANN index; this crate gives **traffic** a
//! daemon: one process loads the embedding store and one `PANEIDX1` index
//! pair, then answers `similar-nodes` / `recommend-links` requests over a
//! JSON-lines protocol (TCP or stdio) with batched, parallel search —
//! instead of every client paying the load cost per invocation (the
//! LogBase lesson from PAPERS.md: serving systems live or die by their
//! ingest and lookup paths, not their batch builders).
//!
//! Four pieces, one per module:
//!
//! * [`protocol`] — the wire format: a strict JSON subset, hand-rolled
//!   (offline workspace), one request/response per line;
//! * [`engine`] — the shared state: embedding store + two
//!   [`pane_index::DeltaIndex`]-wrapped indexes, batched search,
//!   **incremental inserts** (a freshly arrived node is queryable by the
//!   next request, no rebuild), a **compaction** command that folds
//!   deltas into rebuilt bases, and — when opened over a `pane-store`
//!   directory — **durability**: inserts are recorded in an insert-ahead
//!   log before they are acknowledged, replayed at boot, and folded into
//!   a fresh on-disk generation by the `snapshot` request;
//! * [`sharded`] — [`ShardedEngine`]: N store shards routed by
//!   `node_id % N`, per-shard search merged under the shared score
//!   order (bit-identical to the unsharded exact scan for flat shards);
//! * [`server`] — transports: [`serve_lines`] for stdio / tests,
//!   [`serve_tcp`] for the daemon, generic over [`LineHandler`] (any
//!   [`ServeBackend`] behind a lock is one), with bounded request lines
//!   and clean `shutdown` handling.
//!
//! Two more modules take serving **multi-daemon** (`pane route`):
//!
//! * [`client`] — [`ShardClient`]: one pooled, timeout-guarded,
//!   health-tracked connection to one shard daemon;
//! * [`router`] — [`Router`]: one `pane serve` daemon per store shard
//!   behind a thin merging proxy speaking the same protocol, with
//!   graceful degradation when shards die (partial results +
//!   `"degraded":true`) and automatic re-admission when they return;
//! * [`obs`] — [`ServeObs`]: the serving tier's observability schema
//!   over `pane-obs` (per-op request metrics, engine durability gauges,
//!   per-shard client health, the slow-query log), exposed by the
//!   `metrics` protocol op and recorded by [`ObservedHandler`] / the
//!   router transport.
//!
//! Scores are on the unified scale documented in `pane-core::query`:
//! `cos_f + cos_b ∈ [-2, 2]` for similar-node search, raw Eq. 22 inner
//! products for link recommendation — identical across exact and ANN
//! backends, and across sharded and unsharded engines.
//!
//! ```no_run
//! use pane_serve::{IndexSpec, ServeEngine, serve_tcp};
//! use std::sync::{Arc, RwLock};
//!
//! // Durable daemon over a store directory created by `pane store init`:
//! let engine = ServeEngine::open(std::path::Path::new("data/store"), 4).unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:7878").unwrap();
//! serve_tcp(Arc::new(RwLock::new(engine)), listener).unwrap();
//! ```

pub mod client;
pub mod engine;
pub mod obs;
#[cfg(test)]
mod proptests;
pub mod protocol;
pub mod router;
pub mod server;
pub mod sharded;

pub use client::{ClientConfig, ClientError, ShardClient, SleepFn};
pub use engine::{
    Hit, IndexStats, QuerySpace, ServeBackend, ServeEngine, ServeError, SnapshotOutcome,
    StatusReport, StoreReport,
};
pub use obs::ServeObs;
// Re-exported for compatibility: the spec type moved down to
// `pane-index` when the store layer began recording it in manifests.
pub use pane_index::IndexSpec;
pub use protocol::{parse, Json, ParseError};
pub use router::{Router, RouterError};
pub use server::{
    handle_line, serve_lines, serve_tcp, LineHandler, ObservedHandler, MAX_LINE_BYTES,
};
pub use sharded::ShardedEngine;
