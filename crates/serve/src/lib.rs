#![deny(missing_docs)]
//! `pane-serve` — the shared-index serving daemon behind `pane serve`.
//!
//! PR 2 gave every *caller* an ANN index; this crate gives **traffic** a
//! daemon: one process loads the embedding store and one `PANEIDX1` index
//! pair, then answers `similar-nodes` / `recommend-links` requests over a
//! JSON-lines protocol (TCP or stdio) with batched, parallel search —
//! instead of every client paying the load cost per invocation (the
//! LogBase lesson from PAPERS.md: serving systems live or die by their
//! ingest and lookup paths, not their batch builders).
//!
//! Three pieces, one per module:
//!
//! * [`protocol`] — the wire format: a strict JSON subset, hand-rolled
//!   (offline workspace), one request/response per line;
//! * [`engine`] — the shared state: embedding store + two
//!   [`pane_index::DeltaIndex`]-wrapped indexes, batched search,
//!   **incremental inserts** (a freshly arrived node is queryable by the
//!   next request, no rebuild) and a **compaction** command that folds
//!   deltas into rebuilt bases;
//! * [`server`] — transports: [`serve_lines`] for stdio / tests,
//!   [`serve_tcp`] for the daemon, with clean `shutdown` handling.
//!
//! Scores are on the unified scale documented in `pane-core::query`:
//! `cos_f + cos_b ∈ [-2, 2]` for similar-node search, raw Eq. 22 inner
//! products for link recommendation — identical across exact and ANN
//! backends.
//!
//! ```no_run
//! use pane_serve::{IndexSpec, ServeEngine, serve_tcp};
//! use std::sync::{Arc, RwLock};
//!
//! let emb = pane_core::load_binary(std::path::Path::new("emb.bin")).unwrap();
//! let engine = ServeEngine::build(emb, &IndexSpec::Flat, 4);
//! let listener = std::net::TcpListener::bind("127.0.0.1:7878").unwrap();
//! serve_tcp(Arc::new(RwLock::new(engine)), listener).unwrap();
//! ```

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{Hit, IndexSpec, IndexStats, ServeEngine, ServeError};
pub use protocol::{parse, Json, ParseError};
pub use server::{handle_line, serve_lines, serve_tcp};
