//! Protocol fuzzing — same style as `pane-format`'s container fuzz
//! tests: random bytes, truncations, deep nesting, and mutated valid
//! requests must never panic the parser or the request loop, and every
//! response must be a structured `{"ok":…}` line.
//!
//! The serving tier's first line of defense is the depth-capped JSON
//! subset in [`crate::protocol`]; the second is [`handle_line`], which
//! must turn *any* input line into a well-formed response; the third is
//! [`serve_lines`], which must survive arbitrary byte streams (invalid
//! UTF-8, oversized lines, blank lines) without hanging or panicking.

use crate::engine::ServeEngine;
use crate::protocol::{parse, Json, ParseError};
use crate::server::{handle_line, serve_lines};
use pane_core::{Pane, PaneConfig};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::IndexSpec;
use proptest::prelude::*;
use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{OnceLock, RwLock};

/// Shared engine fixture. Proptest runs each case dozens of times, so
/// the SBM embed happens once; fuzzed inserts that happen to be valid
/// mutate it, which is part of the point — the loop must stay healthy
/// on a moving engine.
fn engine() -> &'static RwLock<ServeEngine> {
    static ENGINE: OnceLock<RwLock<ServeEngine>> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let g = generate_sbm(&SbmConfig {
            nodes: 40,
            communities: 2,
            avg_out_degree: 4.0,
            attributes: 10,
            attrs_per_node: 3.0,
            seed: 17,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(8).seed(5).build())
            .embed(&g)
            .unwrap();
        RwLock::new(ServeEngine::build(emb, &IndexSpec::Flat, 2))
    })
}

/// Runs the parser under `catch_unwind`: any outcome but a panic is
/// acceptable here (callers assert Ok/Err specifics themselves).
fn parse_structured(input: &str) -> Result<Json, ParseError> {
    catch_unwind(|| parse(input)).unwrap_or_else(|_| panic!("parser panicked on {input:?}"))
}

/// Runs one line through the request loop and asserts the response is
/// a parseable object with a boolean `ok` field. Returns (ok, response).
fn respond_structured(line: &str) -> (bool, String) {
    let (resp, _shutdown) = catch_unwind(AssertUnwindSafe(|| handle_line(engine(), line)))
        .unwrap_or_else(|_| panic!("handle_line panicked on {line:?}"));
    let v = parse(&resp).unwrap_or_else(|e| panic!("unparseable response {resp:?}: {e}"));
    match v.get("ok") {
        Some(&Json::Bool(ok)) => (ok, resp),
        other => panic!("response lacks boolean ok ({other:?}): {resp}"),
    }
}

/// Valid request corpus used as mutation seeds — one per protocol
/// family (read queries, a write, an introspection op).
const CORPUS: [&str; 4] = [
    "{\"op\":\"similar-nodes\",\"nodes\":[1,2,7],\"k\":4}",
    "{\"op\":\"recommend-links\",\"nodes\":[0,3],\"k\":3,\"exclude\":[1]}",
    "{\"op\":\"insert\",\"forward\":[0.1,-0.2,0.3,0.4],\"backward\":[0.5,0.1,-0.3,0.2]}",
    "{\"op\":\"stats\"}",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random byte soup through the parser: never a panic, and any
    /// failure is a positioned `ParseError`.
    #[test]
    fn parser_survives_byte_soup(body in proptest::collection::vec(0u32..256, 0..300)) {
        let bytes: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(e) = parse_structured(&text) {
            prop_assert!(e.at <= text.len(), "error position {} past input", e.at);
            prop_assert!(!e.message.is_empty());
        }
    }

    /// Truncating a valid request at any byte boundary yields a
    /// structured parse error, and the request loop answers it with
    /// `"ok":false` instead of dying.
    #[test]
    fn truncations_are_rejected_structurally(which in 0usize..4, cut in 0usize..100) {
        let full = CORPUS[which];
        let mut cut = cut.min(full.len().saturating_sub(1));
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &full[..cut];
        prop_assert!(
            parse_structured(prefix).is_err(),
            "strict prefix parsed: {prefix:?}"
        );
        let (ok, _) = respond_structured(prefix);
        prop_assert!(!ok, "truncated request must be refused: {prefix:?}");
    }

    /// Nesting far past the depth cap is refused with the documented
    /// "nesting too deep" error — no stack exhaustion, no panic.
    #[test]
    fn deep_nesting_hits_the_cap(depth in 40usize..200, brace in 0usize..2) {
        let text = if brace == 0 {
            format!("{}{}", "[".repeat(depth), "]".repeat(depth))
        } else {
            // {"a":{"a":…{"a":null}…}}
            format!(
                "{}null{}",
                "{\"a\":".repeat(depth),
                "}".repeat(depth)
            )
        };
        let err = parse_structured(&text).expect_err("over-deep input must fail");
        prop_assert!(
            err.message.contains("nesting too deep"),
            "wrong error for depth {depth}: {err}"
        );
        // And the request loop reports it as a refusal, not a crash.
        let (ok, _) = respond_structured(&text);
        prop_assert!(!ok);
    }

    /// Byte-level mutations of valid requests: whatever the flip does
    /// (still-valid request, type confusion, garbage), the loop answers
    /// with a structured response.
    #[test]
    fn mutated_requests_get_structured_responses(
        which in 0usize..4,
        flips in proptest::collection::vec(0u32..4096, 0..6),
        xors in proptest::collection::vec(1u32..256, 0..6),
    ) {
        let mut bytes = CORPUS[which].as_bytes().to_vec();
        for (i, pos) in flips.iter().enumerate() {
            let pos = *pos as usize % bytes.len();
            let x = xors.get(i).copied().unwrap_or(1) as u8;
            bytes[pos] ^= x;
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let (_ok, resp) = respond_structured(&line);
        // Refusals must say why.
        if let Some(Json::Str(msg)) = parse(&resp).unwrap().get("error") {
            prop_assert!(!msg.is_empty());
        }
    }

    /// Raw byte streams (embedded newlines, invalid UTF-8, blank lines)
    /// through the full session loop: `serve_lines` terminates, and
    /// every emitted line is a structured `{"ok":…}` response.
    #[test]
    fn session_loop_survives_byte_streams(
        body in proptest::collection::vec(0u32..256, 0..400),
        newlines in proptest::collection::vec(0u32..400, 0..8),
    ) {
        let mut bytes: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        for pos in &newlines {
            let pos = *pos as usize % (bytes.len() + 1);
            bytes.insert(pos, b'\n');
        }
        let mut out = Vec::new();
        let finished = catch_unwind(AssertUnwindSafe(|| {
            serve_lines(engine(), Cursor::new(bytes.clone()), &mut out)
        }))
        .unwrap_or_else(|_| panic!("serve_lines panicked on {bytes:?}"));
        prop_assert!(finished.is_ok(), "session loop errored: {finished:?}");
        for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let text = std::str::from_utf8(line).expect("responses are UTF-8");
            let v = parse(text).unwrap_or_else(|e| panic!("bad response {text:?}: {e}"));
            prop_assert!(
                matches!(v.get("ok"), Some(Json::Bool(_))),
                "response lacks ok: {text}"
            );
        }
    }
}
