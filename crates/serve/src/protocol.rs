//! The `pane serve` wire protocol: JSON-lines over TCP or stdio.
//!
//! One request per line, one response line per request, in order. The
//! grammar is a strict subset of JSON (objects, arrays, strings, finite
//! numbers, booleans, `null`) parsed by the hand-rolled reader below —
//! the workspace builds offline, so no serde. Requests:
//!
//! ```text
//! {"op":"similar-nodes","nodes":[0,1,2],"k":10}
//! {"op":"recommend-links","nodes":[0],"k":10,"exclude":[4,5]}
//! {"op":"insert","forward":[…k/2 floats…],"backward":[…k/2 floats…]}
//! {"op":"compact"}
//! {"op":"snapshot"}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"query-vectors","space":"similar","nodes":[0,1]}
//! {"op":"search","space":"links","k":10,"queries":[[…floats…],…]}
//! {"op":"shutdown"}
//! ```
//!
//! `query-vectors` and `search` are the two halves of a *distributed*
//! query — what the `pane route` proxy speaks to shard daemons: the
//! owner daemon turns node ids into raw query vectors (`space` selects
//! the similar-node or link-recommendation vector form), and `search`
//! runs caller-supplied vectors against one index, unfiltered, in the
//! daemon's own id space. Floats cross the wire through the
//! shortest-roundtrip `f64` formatter, so composing the two ops over
//! TCP is bit-identical to the in-process query path.
//!
//! `snapshot` commits a new durable base generation (store-backed
//! daemons only): the grown embedding and rebuilt indexes are written to
//! disk and the insert-ahead log is truncated, so the next boot replays
//! nothing. `stats` responses of store-backed daemons carry a `store`
//! object (`generation`, `wal_records`, `wal_bytes`, `replayed`) and —
//! when serving a sharded root — a `shards` count; instrumented
//! endpoints add `uptime_secs` and `requests_total`. `metrics` (daemon
//! and router) returns the endpoint's metrics registry as a JSON object
//! plus a Prometheus-style `text` exposition (see `pane-obs` and the
//! `ARCHITECTURE.md` Observability section).
//!
//! Responses always carry `"ok"`: `{"ok":true,"op":…,…}` on success,
//! `{"ok":false,"error":"…"}` on failure. Search responses hold one
//! `[{"node":id,"score":s},…]` array per query node, in request order;
//! scores are on the unified scale documented in `pane-core`'s `query`
//! module (`cos_f + cos_b ∈ [-2,2]` for `similar-nodes`, the raw Eq. 22
//! inner product for `recommend-links`).

use std::fmt::Write as _;

/// A parsed JSON value (strict subset: no non-finite numbers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: last one wins on get).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_index(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array of non-negative integers.
    pub fn as_index_array(&self) -> Option<Vec<usize>> {
        match self {
            Json::Arr(items) => items.iter().map(Json::as_index).collect(),
            _ => None,
        }
    }

    /// The value as an array of finite floats.
    pub fn as_f64_array(&self) -> Option<Vec<f64>> {
        match self {
            Json::Arr(items) => items.iter().map(Json::as_f64).collect(),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                // `{}` on f64 prints the shortest string that parses back
                // to the same value; integers print without a dot.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A protocol-level parse failure (position + message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value, requiring the whole input to be consumed
/// (modulo surrounding whitespace).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Parser depth cap: requests are flat, so anything deeper is hostile.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|_| Json::Null),
            Some(b't') => self.eat("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(":")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected '\"'"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat("\\u")
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a value"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number '{text}'")))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

/// Convenience constructors for response assembly.
impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from an integer id.
    pub fn num(x: usize) -> Json {
        Json::Num(x as f64)
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_requests() {
        for line in [
            r#"{"op":"similar-nodes","nodes":[0,1,2],"k":10}"#,
            r#"{"op":"insert","forward":[0.5,-1.25e-3],"backward":[1,2]}"#,
            r#"{"op":"stats"}"#,
            r#"[true,false,null,"a\"b\\c\nd",1e9]"#,
        ] {
            let v = parse(line).unwrap();
            assert_eq!(parse(&v.to_line()).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"op":"x","nodes":[3,4],"k":7,"w":[0.5,1.5]}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("nodes").unwrap().as_index_array(), Some(vec![3, 4]));
        assert_eq!(v.get("k").unwrap().as_index(), Some(7));
        assert_eq!(v.get("w").unwrap().as_f64_array(), Some(vec![0.5, 1.5]));
        assert_eq!(v.get("missing"), None);
        // Floats and negatives are not indices.
        assert_eq!(parse("3.5").unwrap().as_index(), None);
        assert_eq!(parse("-1").unwrap().as_index(), None);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "nul",
            "1e999",
            "NaN",
            "\"\u{1}\"",
            "[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[1]]]",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escaped_output_reparses() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(parse(&s.to_line()).unwrap(), s);
    }
}
