//! The serving engine: one shared embedding store + two delta-capable
//! indexes, answering batched queries and absorbing incremental inserts.
//!
//! This is the state behind a `pane serve` daemon. Where the CLI's
//! `pane index search` reloads the index for every invocation, the engine
//! loads everything **once** and serves every request from the shared
//! structures:
//!
//! * the **embedding store** (`X_f`, `X_b`, `Y` from `pane-core`) — grown
//!   in place when nodes arrive;
//! * the **node index** over the `[X_f ‖ X_b]` classifier features
//!   (max-inner-product ⇒ the unified `cos_f + cos_b` score);
//! * the **link index** over `X_b` (max-inner-product ⇒ raw Eq. 22
//!   scores, with the `YᵀY` Gram matrix precomputed once).
//!
//! Both indexes are wrapped in [`DeltaIndex`], so an insert is O(dim) and
//! the very next query sees the new node. [`ServeEngine::compact`] folds
//! accumulated deltas back into optimized base structures by rebuilding
//! them — deterministically, from the engine's recorded [`IndexSpec`].
//!
//! # Durability
//!
//! An engine opened over a **store directory** ([`ServeEngine::open`],
//! backed by `pane-store`) is restart-safe: [`Store::open`] replays the
//! insert-ahead log into the delta segments at boot, every
//! [`ServeEngine::insert`] appends (and syncs) a WAL record *before* the
//! in-memory insert is acknowledged, and [`ServeEngine::snapshot`]
//! compacts the grown state into a fresh on-disk generation and
//! truncates the log. Engines built directly from an embedding
//! ([`ServeEngine::build`] / [`ServeEngine::new`]) keep the old
//! ephemeral behavior — inserts live only in memory.
//!
//! # Consistency model
//!
//! Inserts come from `pane-core`'s incremental path (`grow_embedding` +
//! `reembed_warm`): the caller re-embeds offline and pushes the *new*
//! nodes' rows. Existing rows are not retouched — the daemon serves the
//! embedding it loaded plus appended rows (eventual consistency; a full
//! refresh is a restart with the new embedding file).

use crate::obs::{EngineObs, ServeObs};
use pane_core::PaneEmbedding;
use pane_index::{AnyIndex, DeltaIndex, IndexError, IndexSpec, VectorIndex};
use pane_linalg::DenseMatrix;
use pane_obs::Level;
use pane_store::{OpenStore, Store, StoreError};
use std::path::Path;
use std::time::Instant;

/// Errors a serving request can produce.
#[derive(Debug)]
pub enum ServeError {
    /// The request is malformed or references unknown nodes.
    BadRequest(String),
    /// The underlying index rejected the operation.
    Index(IndexError),
    /// The durable store layer failed (WAL append, snapshot, open).
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Index(e) => write!(f, "index error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> Self {
        ServeError::Index(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// One scored hit returned to a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Node id.
    pub node: usize,
    /// Score on the unified scale (see `pane-core`'s `query` docs).
    pub score: f64,
}

/// Point-in-time view of one serving index (for `stats` responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Index structure name (`flat` / `ivf` / `hnsw`).
    pub kind: &'static str,
    /// Vectors in the optimized base structure.
    pub base: usize,
    /// Vectors pending in the delta segment.
    pub delta: usize,
}

/// Durability facts surfaced in `stats` responses: which generation the
/// engine booted from and what the insert-ahead log holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreReport {
    /// Current on-disk base generation.
    pub generation: u64,
    /// Records currently in the WAL (replayed at boot + appended since).
    pub wal_records: usize,
    /// Bytes currently in the WAL file (header + records; summed across
    /// shards when sharded).
    pub wal_bytes: u64,
    /// Records replayed from the WAL when the engine booted.
    pub replayed: usize,
    /// Artifact format of the base generation (`legacy` / `columnar`;
    /// `mixed` when shards disagree mid-migration).
    pub format: &'static str,
    /// Total on-disk bytes of the base generation's artifacts (summed
    /// across shards when sharded).
    pub artifact_bytes: u64,
}

/// Full engine status (the `stats` protocol response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusReport {
    /// Served nodes (loaded + inserted; global across shards).
    pub nodes: usize,
    /// Per-direction embedding width `k/2`.
    pub half_dim: usize,
    /// Worker threads for batched searches and compaction builds.
    pub threads: usize,
    /// Similar-nodes index stats (summed across shards when sharded).
    pub node_index: IndexStats,
    /// Link index stats (summed across shards when sharded).
    pub link_index: IndexStats,
    /// Durability facts, when a store directory backs the engine.
    pub store: Option<StoreReport>,
    /// Shard count, when the engine routes across a sharded store.
    pub shards: Option<usize>,
}

/// Result of a [`ServeBackend::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotOutcome {
    /// New on-disk base generation (of shard 0 when sharded).
    pub generation: u64,
    /// Delta vectors folded into the new base(s).
    pub folded: usize,
}

/// The two query spaces a daemon serves (see `pane-core`'s `query` docs):
/// similar-node search runs over the `k`-dim `[X_f ‖ X_b]` classifier
/// features, link recommendation over the `k/2`-dim `X_b` rows. Both are
/// max-inner-product, so the space is selected explicitly, not inferred
/// from a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySpace {
    /// Similar-node search (`cos_f + cos_b` over classifier features).
    Similar,
    /// Link recommendation (raw Eq. 22 inner products over `X_b`).
    Links,
}

impl QuerySpace {
    /// Wire name used by the `search` / `query-vectors` protocol ops.
    pub fn name(self) -> &'static str {
        match self {
            QuerySpace::Similar => "similar",
            QuerySpace::Links => "links",
        }
    }

    /// Parses a wire name (`similar` / `links`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "similar" => Some(QuerySpace::Similar),
            "links" => Some(QuerySpace::Links),
            _ => None,
        }
    }

    /// Query-vector dimensionality in this space for half-width `k/2`.
    pub fn dim(self, half_dim: usize) -> usize {
        match self {
            QuerySpace::Similar => 2 * half_dim,
            QuerySpace::Links => half_dim,
        }
    }
}

/// What a serving transport needs from an engine — implemented by
/// [`ServeEngine`] (one store) and `ShardedEngine` (N stores routed by
/// `node_id % N`), so `serve_lines` / `serve_tcp` run either unchanged.
pub trait ServeBackend: Send + Sync {
    /// Batched similar-node search (see [`ServeEngine::similar_nodes`]).
    fn similar_nodes(&self, nodes: &[usize], k: usize) -> Result<Vec<Vec<Hit>>, ServeError>;
    /// Batched link recommendation (see [`ServeEngine::recommend_links`]).
    fn recommend_links(
        &self,
        nodes: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<Vec<Hit>>, ServeError>;
    /// The raw query vector of each node in `space`: classifier features
    /// for [`QuerySpace::Similar`], `q = X_f·YᵀY` link query vectors for
    /// [`QuerySpace::Links`]. This is the owner-shard half of a
    /// distributed query — a router fetches vectors from each node's
    /// owner daemon and fans them out to every shard's
    /// [`ServeBackend::search_raw`].
    fn query_vectors(
        &self,
        space: QuerySpace,
        nodes: &[usize],
    ) -> Result<Vec<Vec<f64>>, ServeError>;
    /// Unfiltered top-`fetch` search of one index with caller-supplied
    /// query vectors. Hit ids are in this backend's own id space (local
    /// ids for a single shard daemon, global ids for a sharded engine);
    /// no self- or exclude-filtering happens here — the merging caller
    /// owns that, exactly like the in-process sharded path.
    fn search_raw(
        &self,
        space: QuerySpace,
        queries: &DenseMatrix,
        fetch: usize,
    ) -> Result<Vec<Vec<Hit>>, ServeError>;
    /// Ingests one node's row pair, returning its assigned (global) id.
    fn insert(&mut self, forward: &[f64], backward: &[f64]) -> Result<usize, ServeError>;
    /// Folds delta segments into rebuilt in-memory bases; returns the
    /// number of vectors folded per index.
    fn compact(&mut self) -> usize;
    /// Compacts **and** commits a new durable generation, truncating the
    /// insert-ahead log. Fails on engines without a store directory.
    fn snapshot(&mut self) -> Result<SnapshotOutcome, ServeError>;
    /// Point-in-time status (the `stats` response).
    fn status(&self) -> StatusReport;
    /// Attaches serving-tier observability: the backend swaps its no-op
    /// instrumentation handles for ones registered in `obs`'s metrics
    /// registry (per shard when sharded) and emits its boot event.
    /// Default: no-op — uninstrumented backends keep working.
    fn attach_obs(&mut self, _obs: &ServeObs) {}
}

/// Validates a query's node-id list against the engine's id space —
/// shared by the single and sharded engines so the errors cannot drift.
pub(crate) fn check_nodes(n: usize, nodes: &[usize]) -> Result<(), ServeError> {
    if nodes.is_empty() {
        return Err(ServeError::BadRequest("empty node list".into()));
    }
    if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
        return Err(ServeError::BadRequest(format!(
            "node {bad} out of range (n = {n})"
        )));
    }
    Ok(())
}

/// The shared serving state. See the [module docs](self).
pub struct ServeEngine {
    emb: PaneEmbedding,
    /// `YᵀY`, precomputed once — link queries are `X_f[src] · gram`.
    gram: DenseMatrix,
    node_index: DeltaIndex,
    link_index: DeltaIndex,
    node_spec: IndexSpec,
    link_spec: IndexSpec,
    threads: usize,
    /// Durable-store handle; `None` for ephemeral (non-durable) engines.
    store: Option<Store>,
    /// Instrumentation handles (no-op until [`ServeBackend::attach_obs`]).
    obs: EngineObs,
}

impl ServeEngine {
    /// Wraps an embedding and two prebuilt base indexes (ephemeral — no
    /// store directory; inserts live only in memory).
    ///
    /// `node_base` must index the `n × k` classifier features and
    /// `link_base` the `n × k/2` backward embeddings of `emb`; mismatched
    /// shapes are rejected here rather than at the first query.
    pub fn new(
        emb: PaneEmbedding,
        node_base: AnyIndex,
        link_base: AnyIndex,
        threads: usize,
    ) -> Result<Self, ServeError> {
        let n = emb.forward.rows();
        let k2 = emb.forward.cols();
        for (what, idx, want_dim) in [("node", &node_base, 2 * k2), ("link", &link_base, k2)] {
            if idx.len() != n || idx.dim() != want_dim {
                return Err(ServeError::BadRequest(format!(
                    "{what} index holds {}×{} but the embedding implies {n}×{want_dim}",
                    idx.len(),
                    idx.dim()
                )));
            }
        }
        Ok(Self {
            gram: emb.link_gram(),
            node_spec: IndexSpec::of(&node_base),
            link_spec: IndexSpec::of(&link_base),
            node_index: DeltaIndex::new(node_base),
            link_index: DeltaIndex::new(link_base),
            emb,
            threads: threads.max(1),
            store: None,
            obs: EngineObs::noop(),
        })
    }

    /// Builds both base indexes from `emb` according to `spec`, then
    /// wraps them in an ephemeral engine. The node index is built over
    /// the classifier features, the link index over `X_b`, both
    /// max-inner-product (the unified score scale).
    pub fn build(emb: PaneEmbedding, spec: &IndexSpec, threads: usize) -> Self {
        let threads = threads.max(1);
        let (node_base, link_base) = pane_store::build_bases(&emb, spec, spec, threads);
        Self::new(emb, node_base, link_base, threads).expect("freshly built indexes always match")
    }

    /// Opens a durable engine over a single store directory: loads the
    /// current base generation and replays the insert-ahead log, so every
    /// insert acknowledged before the last shutdown (clean or not) is
    /// served again.
    pub fn open(dir: &Path, threads: usize) -> Result<Self, ServeError> {
        Ok(Self::from_open_store(Store::open(dir)?, threads))
    }

    /// Wraps an already-opened store (the building block `ShardedEngine`
    /// uses per shard).
    pub fn from_open_store(opened: OpenStore, threads: usize) -> Self {
        let OpenStore {
            store,
            embedding,
            node_index,
            link_index,
        } = opened;
        Self {
            gram: embedding.link_gram(),
            node_spec: store.node_spec(),
            link_spec: store.link_spec(),
            node_index,
            link_index,
            emb: embedding,
            threads: threads.max(1),
            store: Some(store),
            obs: EngineObs::noop(),
        }
    }

    /// Swaps in registered instrumentation handles, syncs the durability
    /// gauges to the store's current state, and emits the boot event.
    /// Called by [`ServeBackend::attach_obs`] (directly, or per shard by
    /// the sharded engine with `{shard="s"}`-labeled handles).
    pub(crate) fn set_engine_obs(&mut self, obs: EngineObs) {
        self.obs = obs;
        self.sync_store_gauges();
        let mut boot = self
            .obs
            .tracer
            .event(Level::Info, "engine.boot")
            .int_field("nodes", self.num_nodes() as u64)
            .int_field("half_dim", self.half_dim() as u64);
        if let Some(store) = &self.store {
            boot = boot
                .int_field("generation", store.generation())
                .int_field("wal_records", store.wal_records() as u64)
                .int_field("replayed", store.replayed() as u64)
                .int_field("recovered_bytes", store.recovered_bytes());
        }
        boot.emit();
    }

    /// Mirrors the store's WAL size and generation into the gauges.
    fn sync_store_gauges(&self) {
        if let Some(store) = &self.store {
            self.obs.wal_bytes.set(store.wal_bytes() as i64);
            self.obs.wal_records.set(store.wal_records() as i64);
            self.obs.generation.set(store.generation() as i64);
        }
    }

    /// Number of served nodes (loaded + inserted).
    pub fn num_nodes(&self) -> usize {
        self.emb.forward.rows()
    }

    /// Per-direction embedding width `k/2`.
    pub fn half_dim(&self) -> usize {
        self.emb.forward.cols()
    }

    /// Worker threads used for batched searches and compaction builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The embedding store (shard-local rows for a sharded engine).
    pub(crate) fn embedding(&self) -> &PaneEmbedding {
        &self.emb
    }

    /// The precomputed `YᵀY` Gram matrix.
    pub(crate) fn gram(&self) -> &DenseMatrix {
        &self.gram
    }

    /// The similar-nodes index (base + delta).
    pub(crate) fn node_index(&self) -> &DeltaIndex {
        &self.node_index
    }

    /// The link index (base + delta).
    pub(crate) fn link_index(&self) -> &DeltaIndex {
        &self.link_index
    }

    /// Stats of the node (similar-nodes) index.
    pub fn node_stats(&self) -> IndexStats {
        IndexStats {
            kind: self.node_spec.kind_name(),
            base: self.node_index.base_len(),
            delta: self.node_index.delta_len(),
        }
    }

    /// Stats of the link (recommend-links) index.
    pub fn link_stats(&self) -> IndexStats {
        IndexStats {
            kind: self.link_spec.kind_name(),
            base: self.link_index.base_len(),
            delta: self.link_index.delta_len(),
        }
    }

    /// Durability facts, when a store directory backs this engine.
    pub fn store_report(&self) -> Option<StoreReport> {
        self.store.as_ref().map(|s| StoreReport {
            generation: s.generation(),
            wal_records: s.wal_records(),
            wal_bytes: s.wal_bytes(),
            replayed: s.replayed(),
            format: s.format().as_str(),
            artifact_bytes: s.artifact_bytes(),
        })
    }

    fn check_nodes(&self, nodes: &[usize]) -> Result<(), ServeError> {
        check_nodes(self.num_nodes(), nodes)
    }

    /// Batched similar-node search: for each query node, its top-`k`
    /// most similar nodes (self excluded) on the unified
    /// `cos_f + cos_b ∈ [-2, 2]` scale. Queries fan out over the
    /// engine's worker threads; output order matches `nodes`.
    pub fn similar_nodes(&self, nodes: &[usize], k: usize) -> Result<Vec<Vec<Hit>>, ServeError> {
        self.check_nodes(nodes)?;
        let rows: Vec<Vec<f64>> = nodes
            .iter()
            .map(|&v| self.emb.classifier_features(v))
            .collect();
        let queries = DenseMatrix::from_rows(&rows);
        let batched = self.node_index.batch_search(&queries, k + 1, self.threads);
        Ok(nodes
            .iter()
            .zip(batched)
            .map(|(&v, hits)| {
                hits.into_iter()
                    .filter(|h| h.index != v)
                    .take(k)
                    .map(|h| Hit {
                        node: h.index,
                        score: h.score,
                    })
                    .collect()
            })
            .collect())
    }

    /// Batched link recommendation: for each source node, the top-`k`
    /// destinations by the raw Eq. 22 score, excluding the source itself
    /// and every id in `exclude` (typically known out-neighbors).
    pub fn recommend_links(
        &self,
        nodes: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        self.check_nodes(nodes)?;
        let rows: Vec<Vec<f64>> = nodes.iter().map(|&v| self.link_query_vector(v)).collect();
        let queries = DenseMatrix::from_rows(&rows);
        // Oversample so the post-filter cannot starve the result.
        let fetch = k + exclude.len() + 1;
        let batched = self.link_index.batch_search(&queries, fetch, self.threads);
        Ok(nodes
            .iter()
            .zip(batched)
            .map(|(&src, hits)| {
                hits.into_iter()
                    .filter(|h| h.index != src && !exclude.contains(&h.index))
                    .take(k)
                    .map(|h| Hit {
                        node: h.index,
                        score: h.score,
                    })
                    .collect()
            })
            .collect())
    }

    /// The per-query link vector `q = X_f[src]·YᵀY` (Eq. 22 reduces the
    /// link score to `q · X_b[dst]`) — the one shared kernel in
    /// `pane-core`, so daemon scores cannot drift from `EmbeddingQuery`'s.
    pub(crate) fn link_query_vector(&self, src: usize) -> Vec<f64> {
        self.emb.link_query_vector_with(&self.gram, src)
    }

    /// Query vectors of `nodes` in `space` (see
    /// [`ServeBackend::query_vectors`]).
    pub fn query_vectors(
        &self,
        space: QuerySpace,
        nodes: &[usize],
    ) -> Result<Vec<Vec<f64>>, ServeError> {
        self.check_nodes(nodes)?;
        Ok(match space {
            QuerySpace::Similar => nodes
                .iter()
                .map(|&v| self.emb.classifier_features(v))
                .collect(),
            QuerySpace::Links => nodes.iter().map(|&v| self.link_query_vector(v)).collect(),
        })
    }

    /// Unfiltered top-`fetch` search with caller-supplied query vectors
    /// (see [`ServeBackend::search_raw`]). Hit ids are this engine's own
    /// (local) ids.
    pub fn search_raw(
        &self,
        space: QuerySpace,
        queries: &DenseMatrix,
        fetch: usize,
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        if queries.rows() == 0 {
            return Err(ServeError::BadRequest("empty query batch".into()));
        }
        let want = space.dim(self.half_dim());
        if queries.cols() != want {
            return Err(ServeError::BadRequest(format!(
                "{}-space queries must have {want} entries (got {})",
                space.name(),
                queries.cols()
            )));
        }
        let index = match space {
            QuerySpace::Similar => &self.node_index,
            QuerySpace::Links => &self.link_index,
        };
        Ok(index
            .batch_search(queries, fetch, self.threads)
            .into_iter()
            .map(|hits| {
                hits.into_iter()
                    .map(|h| Hit {
                        node: h.index,
                        score: h.score,
                    })
                    .collect()
            })
            .collect())
    }

    /// Ingests one new node: appends its forward/backward rows to the
    /// embedding store and its derived vectors to both delta segments.
    /// Returns the assigned node id (dense, append-ordered — the same id
    /// `grow_embedding` gives the node on the offline side).
    ///
    /// With a store attached, the row pair is recorded (and synced) in
    /// the insert-ahead log **before** any in-memory state changes — an
    /// acknowledged insert survives a hard kill. The very next query can
    /// return the node; no rebuild happens here.
    pub fn insert(&mut self, forward: &[f64], backward: &[f64]) -> Result<usize, ServeError> {
        let k2 = self.half_dim();
        if forward.len() != k2 || backward.len() != k2 {
            return Err(ServeError::BadRequest(format!(
                "insert vectors must have k/2 = {k2} entries (got {} forward, {} backward)",
                forward.len(),
                backward.len()
            )));
        }
        if forward.iter().chain(backward).any(|x| !x.is_finite()) {
            return Err(ServeError::BadRequest(
                "insert vectors must be finite".into(),
            ));
        }
        let id = self.num_nodes();
        if let Some(store) = &mut self.store {
            let report = store.append(id, forward, backward)?;
            self.obs.wal_append.observe_duration(report.write);
            self.obs.wal_fsync.observe_duration(report.sync);
            self.obs.wal_bytes.set(store.wal_bytes() as i64);
            self.obs.wal_records.set(store.wal_records() as i64);
        }
        self.obs.inserts.inc();
        self.emb.forward.push_row(forward);
        self.emb.backward.push_row(backward);
        let features = self.emb.classifier_features(id);
        self.node_index.insert(&features)?;
        self.link_index.insert(backward)?;
        Ok(id)
    }

    /// Folds both delta segments into freshly rebuilt base structures
    /// (per the engine's recorded specs, deterministic given the store).
    /// Returns the number of vectors folded per index.
    ///
    /// In-memory only: with a store attached the WAL keeps its records,
    /// so a restart still replays them over the unchanged on-disk base —
    /// use [`Self::snapshot`] to make the compaction durable.
    pub fn compact(&mut self) -> usize {
        let folded = self.node_index.delta_len();
        let (node_base, link_base) =
            pane_store::build_bases(&self.emb, &self.node_spec, &self.link_spec, self.threads);
        self.node_index = DeltaIndex::new(node_base);
        self.link_index = DeltaIndex::new(link_base);
        folded
    }

    /// Compacts and commits the result as a new on-disk generation:
    /// rebuilds both bases over the grown embedding, writes them (plus
    /// the embedding) into the next `gen-<g>/`, atomically swings the
    /// manifest, and truncates the insert-ahead log. The next
    /// [`ServeEngine::open`] boots from the new generation with an empty
    /// WAL and identical query results.
    pub fn snapshot(&mut self) -> Result<SnapshotOutcome, ServeError> {
        if self.store.is_none() {
            return Err(ServeError::BadRequest(
                "this daemon has no store directory (started from a bare embedding); \
                 start it with `pane serve --store DIR` to enable snapshots"
                    .into(),
            ));
        }
        let started = Instant::now();
        let folded = self.node_index.delta_len();
        let (node_base, link_base) =
            pane_store::build_bases(&self.emb, &self.node_spec, &self.link_spec, self.threads);
        let store = self.store.as_mut().expect("checked above");
        let generation = store.snapshot(&self.emb, &node_base, &link_base)?;
        self.node_index = DeltaIndex::new(node_base);
        self.link_index = DeltaIndex::new(link_base);
        let dur = started.elapsed();
        self.obs.snapshot_seconds.observe_duration(dur);
        self.obs.snapshots.inc();
        self.sync_store_gauges();
        self.obs
            .tracer
            .event(Level::Info, "engine.snapshot")
            .int_field("generation", generation)
            .int_field("folded", folded as u64)
            .int_field("dur_ms", dur.as_millis() as u64)
            .emit();
        Ok(SnapshotOutcome { generation, folded })
    }

    /// Point-in-time status (the `stats` response).
    pub fn status(&self) -> StatusReport {
        StatusReport {
            nodes: self.num_nodes(),
            half_dim: self.half_dim(),
            threads: self.threads,
            node_index: self.node_stats(),
            link_index: self.link_stats(),
            store: self.store_report(),
            shards: None,
        }
    }
}

impl ServeBackend for ServeEngine {
    fn similar_nodes(&self, nodes: &[usize], k: usize) -> Result<Vec<Vec<Hit>>, ServeError> {
        ServeEngine::similar_nodes(self, nodes, k)
    }
    fn recommend_links(
        &self,
        nodes: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        ServeEngine::recommend_links(self, nodes, k, exclude)
    }
    fn query_vectors(
        &self,
        space: QuerySpace,
        nodes: &[usize],
    ) -> Result<Vec<Vec<f64>>, ServeError> {
        ServeEngine::query_vectors(self, space, nodes)
    }
    fn search_raw(
        &self,
        space: QuerySpace,
        queries: &DenseMatrix,
        fetch: usize,
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        ServeEngine::search_raw(self, space, queries, fetch)
    }
    fn insert(&mut self, forward: &[f64], backward: &[f64]) -> Result<usize, ServeError> {
        ServeEngine::insert(self, forward, backward)
    }
    fn compact(&mut self) -> usize {
        ServeEngine::compact(self)
    }
    fn snapshot(&mut self) -> Result<SnapshotOutcome, ServeError> {
        ServeEngine::snapshot(self)
    }
    fn status(&self) -> StatusReport {
        ServeEngine::status(self)
    }
    fn attach_obs(&mut self, obs: &ServeObs) {
        self.set_engine_obs(obs.engine_obs(None));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_core::{grow_embedding, reembed_warm, EmbeddingQuery, Pane, PaneConfig, QueryBackend};
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_index::{HnswConfig, IvfConfig, Metric};

    fn fixture() -> PaneEmbedding {
        let g = generate_sbm(&SbmConfig {
            nodes: 150,
            communities: 3,
            avg_out_degree: 6.0,
            attributes: 18,
            attrs_per_node: 4.0,
            seed: 17,
            ..Default::default()
        });
        Pane::new(PaneConfig::builder().dimension(16).seed(9).build())
            .embed(&g)
            .unwrap()
    }

    #[test]
    fn flat_engine_matches_embedding_query_exactly() {
        let emb = fixture();
        let q = EmbeddingQuery::new(&emb);
        let engine = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 2);
        let nodes: Vec<usize> = (0..150).step_by(13).collect();
        let sim = engine.similar_nodes(&nodes, 5).unwrap();
        let links = engine.recommend_links(&nodes, 5, &[]).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            let want: Vec<Hit> = q
                .similar_nodes(v, 5)
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(sim[i], want, "similar diverged at {v}");
            let want: Vec<Hit> = q
                .recommend_links(v, 5, &[])
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(links[i], want, "links diverged at {v}");
        }
    }

    #[test]
    fn exact_and_ann_engines_share_the_score_scale() {
        let emb = fixture();
        let flat = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 1);
        let hnsw = ServeEngine::build(emb, &IndexSpec::Hnsw(HnswConfig::default()), 1);
        let nodes = [0usize, 7, 33];
        let a = flat.similar_nodes(&nodes, 5).unwrap();
        let b = hnsw.similar_nodes(&nodes, 5).unwrap();
        for (fa, fb) in a.iter().zip(&b) {
            for h in fa.iter().chain(fb.iter()) {
                assert!((-2.0 - 1e-9..=2.0 + 1e-9).contains(&h.score));
            }
            // Wherever both backends return the same node, the score is
            // identical — one documented scale, not two.
            for ha in fa {
                if let Some(hb) = fb.iter().find(|h| h.node == ha.node) {
                    assert_eq!(ha.score, hb.score);
                }
            }
        }
    }

    #[test]
    fn inserted_node_is_served_without_rebuild_and_compaction_folds_it() {
        let g0 = generate_sbm(&SbmConfig {
            nodes: 120,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 15,
            attrs_per_node: 3.0,
            seed: 4,
            ..Default::default()
        });
        let cfg = PaneConfig::builder().dimension(16).seed(2).build();
        let old = Pane::new(cfg.clone()).embed(&g0).unwrap();
        let mut engine = ServeEngine::build(
            old.clone(),
            &IndexSpec::Ivf(IvfConfig {
                nlist: 8,
                nprobe: 8,
                ..Default::default()
            }),
            2,
        );

        // A new node arrives: grow the graph, warm-restart offline (the
        // pane-core incremental path), then push only the new node's rows.
        let n = g0.num_nodes();
        let mut b = pane_graph::GraphBuilder::new(n + 1, g0.num_attributes());
        for (i, j, _) in g0.adjacency().iter() {
            b.add_edge(i, j);
        }
        for (v, r, w) in g0.attributes().iter() {
            b.add_attribute(v, r, w);
        }
        b.add_edge(n, 0);
        b.add_edge(1, n);
        b.add_attribute(n, 0, 1.0);
        let g1 = b.build();
        let warm = reembed_warm(&cfg, &g1, &grow_embedding(&old, 1), 2).unwrap();

        let id = engine
            .insert(warm.forward.row(n), warm.backward.row(n))
            .unwrap();
        assert_eq!(id, n);
        assert_eq!(engine.num_nodes(), n + 1);
        assert_eq!(engine.node_stats().delta, 1);

        // The fresh node is immediately queryable: its own top-1 under
        // the unified scale is itself-excluded, so search *for* it and
        // check it can be *found* as a neighbor of its closest peer.
        let sim = engine.similar_nodes(&[id], 5).unwrap();
        assert_eq!(sim[0].len(), 5);
        let peer = sim[0][0].node;
        let back = engine.similar_nodes(&[peer], 120).unwrap();
        assert!(
            back[0].iter().any(|h| h.node == id),
            "inserted node never surfaces as a neighbor"
        );

        // Compaction folds the delta into the rebuilt base.
        let folded = engine.compact();
        assert_eq!(folded, 1);
        assert_eq!(engine.node_stats().delta, 0);
        assert_eq!(engine.node_stats().base, n + 1);
        let sim2 = engine.similar_nodes(&[id], 5).unwrap();
        assert_eq!(sim2[0].len(), 5);
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        let emb = fixture();
        let mut engine = ServeEngine::build(emb, &IndexSpec::Flat, 1);
        assert!(matches!(
            engine.similar_nodes(&[9999], 3),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.similar_nodes(&[], 3),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.insert(&[1.0], &[1.0]),
            Err(ServeError::BadRequest(_))
        ));
        let k2 = engine.half_dim();
        assert!(matches!(
            engine.insert(&vec![f64::NAN; k2], &vec![0.0; k2]),
            Err(ServeError::BadRequest(_))
        ));
        // Ephemeral engines cannot snapshot — the error says what to do.
        match engine.snapshot() {
            Err(ServeError::BadRequest(m)) => assert!(m.contains("--store"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_prebuilt_indexes_are_rejected() {
        let emb = fixture();
        let wrong = IndexSpec::Flat.build(&emb.backward, Metric::InnerProduct, 1);
        let link = IndexSpec::Flat.build(&emb.backward, Metric::InnerProduct, 1);
        assert!(matches!(
            ServeEngine::new(emb, wrong, link, 1),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn engine_backends_agree_with_flat_query_backend() {
        // QueryBackend::Flat (per-query machinery) and the daemon engine
        // must agree bit-for-bit — same kernels, same unified scale.
        let emb = fixture();
        let q = EmbeddingQuery::with_backend(&emb, &QueryBackend::Flat);
        let engine = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 3);
        for v in (0..150).step_by(29) {
            let want: Vec<Hit> = q
                .similar_nodes(v, 4)
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(engine.similar_nodes(&[v], 4).unwrap()[0], want);
        }
    }

    #[test]
    fn raw_primitives_reconstruct_the_filtered_query_paths() {
        // query_vectors + search_raw are the wire-level building blocks a
        // router uses; composing them by hand must reproduce the engine's
        // own similar_nodes / recommend_links bit-for-bit.
        let emb = fixture();
        let engine = ServeEngine::build(emb, &IndexSpec::Flat, 2);
        let nodes: Vec<usize> = (0..150).step_by(11).collect();
        let k = 6;

        let qv = engine.query_vectors(QuerySpace::Similar, &nodes).unwrap();
        let raw = engine
            .search_raw(QuerySpace::Similar, &DenseMatrix::from_rows(&qv), k + 1)
            .unwrap();
        let composed: Vec<Vec<Hit>> = nodes
            .iter()
            .zip(raw)
            .map(|(&v, hits)| hits.into_iter().filter(|h| h.node != v).take(k).collect())
            .collect();
        assert_eq!(composed, engine.similar_nodes(&nodes, k).unwrap());

        let exclude = [3usize, 17];
        let qv = engine.query_vectors(QuerySpace::Links, &nodes).unwrap();
        let raw = engine
            .search_raw(
                QuerySpace::Links,
                &DenseMatrix::from_rows(&qv),
                k + exclude.len() + 1,
            )
            .unwrap();
        let composed: Vec<Vec<Hit>> = nodes
            .iter()
            .zip(raw)
            .map(|(&v, hits)| {
                hits.into_iter()
                    .filter(|h| h.node != v && !exclude.contains(&h.node))
                    .take(k)
                    .collect()
            })
            .collect();
        assert_eq!(
            composed,
            engine.recommend_links(&nodes, k, &exclude).unwrap()
        );

        // Shape errors are structured, not panics.
        assert!(matches!(
            engine.search_raw(QuerySpace::Links, &DenseMatrix::zeros(1, 3), 4),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.search_raw(QuerySpace::Similar, &DenseMatrix::zeros(0, 0), 4),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.query_vectors(QuerySpace::Similar, &[9999]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn durable_engine_replays_acknowledged_inserts_after_hard_stop() {
        let dir = std::env::temp_dir().join(format!("pane_engine_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let emb = fixture();
        let n = emb.forward.rows();
        let k2 = emb.forward.cols();
        pane_store::Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2).unwrap();

        // Session 1: insert, acknowledge, hard-stop (drop — no shutdown,
        // no compaction, no snapshot).
        let probe: Vec<f64> = (0..k2).map(|i| 0.05 * (i + 1) as f64).collect();
        {
            let mut engine = ServeEngine::open(&dir, 2).unwrap();
            assert_eq!(engine.status().store.unwrap().replayed, 0);
            let id = engine.insert(&probe, &probe).unwrap();
            assert_eq!(id, n);
        }

        // Session 2: the insert is replayed and served.
        let mut engine = ServeEngine::open(&dir, 2).unwrap();
        let report = engine.status().store.unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.wal_records, 1);
        assert_eq!(engine.num_nodes(), n + 1);
        let before = engine.similar_nodes(&[n], 5).unwrap();
        assert_eq!(before[0].len(), 5);

        // Snapshot: new generation, WAL empty, identical answers.
        let out = engine.snapshot().unwrap();
        assert_eq!(out.generation, 2);
        assert_eq!(out.folded, 1);
        drop(engine);
        let engine = ServeEngine::open(&dir, 2).unwrap();
        let report = engine.status().store.unwrap();
        assert_eq!(
            (report.generation, report.wal_records, report.replayed),
            (2, 0, 0)
        );
        assert_eq!(engine.similar_nodes(&[n], 5).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
