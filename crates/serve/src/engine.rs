//! The serving engine: one shared embedding store + two delta-capable
//! indexes, answering batched queries and absorbing incremental inserts.
//!
//! This is the state behind a `pane serve` daemon. Where the CLI's
//! `pane index search` reloads the index for every invocation, the engine
//! loads everything **once** and serves every request from the shared
//! structures:
//!
//! * the **embedding store** (`X_f`, `X_b`, `Y` from `pane-core`) — grown
//!   in place when nodes arrive;
//! * the **node index** over the `[X_f ‖ X_b]` classifier features
//!   (max-inner-product ⇒ the unified `cos_f + cos_b` score);
//! * the **link index** over `X_b` (max-inner-product ⇒ raw Eq. 22
//!   scores, with the `YᵀY` Gram matrix precomputed once).
//!
//! Both indexes are wrapped in [`DeltaIndex`], so an insert is O(dim) and
//! the very next query sees the new node. [`ServeEngine::compact`] folds
//! accumulated deltas back into optimized base structures by rebuilding
//! them — deterministically, from the engine's recorded [`IndexSpec`] —
//! which bounds the delta-scan cost under sustained ingest.
//!
//! # Consistency model
//!
//! Inserts come from `pane-core`'s incremental path (`grow_embedding` +
//! `reembed_warm`): the caller re-embeds offline and pushes the *new*
//! nodes' rows. Existing rows are not retouched — the daemon serves the
//! embedding it loaded plus appended rows (eventual consistency; a full
//! refresh is a restart with the new embedding file).

use pane_core::PaneEmbedding;
use pane_index::{
    AnyIndex, DeltaIndex, FlatIndex, HnswConfig, HnswIndex, IndexError, IvfConfig, IvfIndex,
    Metric, VectorIndex,
};
use pane_linalg::DenseMatrix;

/// Errors a serving request can produce.
#[derive(Debug)]
pub enum ServeError {
    /// The request is malformed or references unknown nodes.
    BadRequest(String),
    /// The underlying index rejected the operation.
    Index(IndexError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Index(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> Self {
        ServeError::Index(e)
    }
}

/// One scored hit returned to a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Node id.
    pub node: usize,
    /// Score on the unified scale (see `pane-core`'s `query` docs).
    pub score: f64,
}

/// A buildable description of an index structure — what
/// [`ServeEngine::compact`] uses to rebuild bases deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexSpec {
    /// Exact flat scan.
    Flat,
    /// Inverted-file index with the recorded build parameters.
    Ivf(IvfConfig),
    /// HNSW graph index with the recorded build parameters.
    Hnsw(HnswConfig),
}

impl IndexSpec {
    /// Builds an index of this spec over `data` (using `threads` workers
    /// where the structure supports it; results are thread-invariant).
    pub fn build(&self, data: &DenseMatrix, metric: Metric, threads: usize) -> AnyIndex {
        match self {
            IndexSpec::Flat => AnyIndex::Flat(FlatIndex::build(data, metric)),
            IndexSpec::Ivf(cfg) => AnyIndex::Ivf(IvfIndex::build(
                data,
                metric,
                &IvfConfig { threads, ..*cfg },
            )),
            IndexSpec::Hnsw(cfg) => AnyIndex::Hnsw(HnswIndex::build(data, metric, cfg)),
        }
    }

    /// Recovers the spec of an existing index. Parameters the `PANEIDX1`
    /// file does not carry (IVF training iterations, seeds) fall back to
    /// their defaults, so a compaction of a *loaded* index is
    /// deterministic but not necessarily byte-identical to the original
    /// build.
    pub fn of(index: &AnyIndex) -> IndexSpec {
        match index {
            AnyIndex::Flat(_) => IndexSpec::Flat,
            AnyIndex::Ivf(x) => IndexSpec::Ivf(IvfConfig {
                nlist: x.nlist(),
                nprobe: x.nprobe(),
                ..Default::default()
            }),
            AnyIndex::Hnsw(x) => IndexSpec::Hnsw(HnswConfig {
                m: x.m(),
                ef_construction: x.ef_construction(),
                ef_search: x.ef_search(),
                seed: 0,
            }),
        }
    }

    /// Short stable name (`flat` / `ivf` / `hnsw`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Hnsw(_) => "hnsw",
        }
    }
}

/// Point-in-time view of one serving index (for `stats` responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Index structure name (`flat` / `ivf` / `hnsw`).
    pub kind: &'static str,
    /// Vectors in the optimized base structure.
    pub base: usize,
    /// Vectors pending in the delta segment.
    pub delta: usize,
}

/// The shared serving state. See the [module docs](self).
pub struct ServeEngine {
    emb: PaneEmbedding,
    /// `YᵀY`, precomputed once — link queries are `X_f[src] · gram`.
    gram: DenseMatrix,
    node_index: DeltaIndex,
    link_index: DeltaIndex,
    node_spec: IndexSpec,
    link_spec: IndexSpec,
    threads: usize,
}

impl ServeEngine {
    /// Wraps an embedding and two prebuilt base indexes.
    ///
    /// `node_base` must index the `n × k` classifier features and
    /// `link_base` the `n × k/2` backward embeddings of `emb`; mismatched
    /// shapes are rejected here rather than at the first query.
    pub fn new(
        emb: PaneEmbedding,
        node_base: AnyIndex,
        link_base: AnyIndex,
        threads: usize,
    ) -> Result<Self, ServeError> {
        let n = emb.forward.rows();
        let k2 = emb.forward.cols();
        for (what, idx, want_dim) in [("node", &node_base, 2 * k2), ("link", &link_base, k2)] {
            if idx.len() != n || idx.dim() != want_dim {
                return Err(ServeError::BadRequest(format!(
                    "{what} index holds {}×{} but the embedding implies {n}×{want_dim}",
                    idx.len(),
                    idx.dim()
                )));
            }
        }
        Ok(Self {
            gram: emb.link_gram(),
            node_spec: IndexSpec::of(&node_base),
            link_spec: IndexSpec::of(&link_base),
            node_index: DeltaIndex::new(node_base),
            link_index: DeltaIndex::new(link_base),
            emb,
            threads: threads.max(1),
        })
    }

    /// Builds both base indexes from `emb` according to `spec`, then
    /// wraps them in an engine. The node index is built over the
    /// classifier features, the link index over `X_b`, both
    /// max-inner-product (the unified score scale).
    pub fn build(emb: PaneEmbedding, spec: &IndexSpec, threads: usize) -> Self {
        let threads = threads.max(1);
        let node_base = spec.build(
            &emb.classifier_feature_matrix(),
            Metric::InnerProduct,
            threads,
        );
        let link_base = spec.build(&emb.backward, Metric::InnerProduct, threads);
        Self::new(emb, node_base, link_base, threads).expect("freshly built indexes always match")
    }

    /// Number of served nodes (loaded + inserted).
    pub fn num_nodes(&self) -> usize {
        self.emb.forward.rows()
    }

    /// Per-direction embedding width `k/2`.
    pub fn half_dim(&self) -> usize {
        self.emb.forward.cols()
    }

    /// Worker threads used for batched searches and compaction builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Stats of the node (similar-nodes) index.
    pub fn node_stats(&self) -> IndexStats {
        IndexStats {
            kind: self.node_spec.kind_name(),
            base: self.node_index.base_len(),
            delta: self.node_index.delta_len(),
        }
    }

    /// Stats of the link (recommend-links) index.
    pub fn link_stats(&self) -> IndexStats {
        IndexStats {
            kind: self.link_spec.kind_name(),
            base: self.link_index.base_len(),
            delta: self.link_index.delta_len(),
        }
    }

    fn check_nodes(&self, nodes: &[usize]) -> Result<(), ServeError> {
        let n = self.num_nodes();
        if nodes.is_empty() {
            return Err(ServeError::BadRequest("empty node list".into()));
        }
        if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
            return Err(ServeError::BadRequest(format!(
                "node {bad} out of range (n = {n})"
            )));
        }
        Ok(())
    }

    /// Batched similar-node search: for each query node, its top-`k`
    /// most similar nodes (self excluded) on the unified
    /// `cos_f + cos_b ∈ [-2, 2]` scale. Queries fan out over the
    /// engine's worker threads; output order matches `nodes`.
    pub fn similar_nodes(&self, nodes: &[usize], k: usize) -> Result<Vec<Vec<Hit>>, ServeError> {
        self.check_nodes(nodes)?;
        let rows: Vec<Vec<f64>> = nodes
            .iter()
            .map(|&v| self.emb.classifier_features(v))
            .collect();
        let queries = DenseMatrix::from_rows(&rows);
        let batched = self.node_index.batch_search(&queries, k + 1, self.threads);
        Ok(nodes
            .iter()
            .zip(batched)
            .map(|(&v, hits)| {
                hits.into_iter()
                    .filter(|h| h.index != v)
                    .take(k)
                    .map(|h| Hit {
                        node: h.index,
                        score: h.score,
                    })
                    .collect()
            })
            .collect())
    }

    /// Batched link recommendation: for each source node, the top-`k`
    /// destinations by the raw Eq. 22 score, excluding the source itself
    /// and every id in `exclude` (typically known out-neighbors).
    pub fn recommend_links(
        &self,
        nodes: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        self.check_nodes(nodes)?;
        let rows: Vec<Vec<f64>> = nodes.iter().map(|&v| self.link_query_vector(v)).collect();
        let queries = DenseMatrix::from_rows(&rows);
        // Oversample so the post-filter cannot starve the result.
        let fetch = k + exclude.len() + 1;
        let batched = self.link_index.batch_search(&queries, fetch, self.threads);
        Ok(nodes
            .iter()
            .zip(batched)
            .map(|(&src, hits)| {
                hits.into_iter()
                    .filter(|h| h.index != src && !exclude.contains(&h.index))
                    .take(k)
                    .map(|h| Hit {
                        node: h.index,
                        score: h.score,
                    })
                    .collect()
            })
            .collect())
    }

    /// The per-query link vector `q = X_f[src]·YᵀY` (Eq. 22 reduces the
    /// link score to `q · X_b[dst]`) — the one shared kernel in
    /// `pane-core`, so daemon scores cannot drift from `EmbeddingQuery`'s.
    fn link_query_vector(&self, src: usize) -> Vec<f64> {
        self.emb.link_query_vector_with(&self.gram, src)
    }

    /// Ingests one new node: appends its forward/backward rows to the
    /// embedding store and its derived vectors to both delta segments.
    /// Returns the assigned node id (dense, append-ordered — the same id
    /// `grow_embedding` gives the node on the offline side).
    ///
    /// The very next query can return the node; no rebuild happens here.
    pub fn insert(&mut self, forward: &[f64], backward: &[f64]) -> Result<usize, ServeError> {
        let k2 = self.half_dim();
        if forward.len() != k2 || backward.len() != k2 {
            return Err(ServeError::BadRequest(format!(
                "insert vectors must have k/2 = {k2} entries (got {} forward, {} backward)",
                forward.len(),
                backward.len()
            )));
        }
        if forward.iter().chain(backward).any(|x| !x.is_finite()) {
            return Err(ServeError::BadRequest(
                "insert vectors must be finite".into(),
            ));
        }
        let id = self.num_nodes();
        self.emb.forward.push_row(forward);
        self.emb.backward.push_row(backward);
        let features = self.emb.classifier_features(id);
        self.node_index.insert(&features)?;
        self.link_index.insert(backward)?;
        Ok(id)
    }

    /// Folds both delta segments into freshly rebuilt base structures
    /// (per the engine's recorded specs, deterministic given the store).
    /// Returns the number of vectors folded per index.
    pub fn compact(&mut self) -> usize {
        let folded = self.node_index.delta_len();
        let node_base = self.node_spec.build(
            &self.emb.classifier_feature_matrix(),
            Metric::InnerProduct,
            self.threads,
        );
        let link_base =
            self.link_spec
                .build(&self.emb.backward, Metric::InnerProduct, self.threads);
        self.node_index = DeltaIndex::new(node_base);
        self.link_index = DeltaIndex::new(link_base);
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_core::{grow_embedding, reembed_warm, EmbeddingQuery, Pane, PaneConfig, QueryBackend};
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn fixture() -> PaneEmbedding {
        let g = generate_sbm(&SbmConfig {
            nodes: 150,
            communities: 3,
            avg_out_degree: 6.0,
            attributes: 18,
            attrs_per_node: 4.0,
            seed: 17,
            ..Default::default()
        });
        Pane::new(PaneConfig::builder().dimension(16).seed(9).build())
            .embed(&g)
            .unwrap()
    }

    #[test]
    fn flat_engine_matches_embedding_query_exactly() {
        let emb = fixture();
        let q = EmbeddingQuery::new(&emb);
        let engine = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 2);
        let nodes: Vec<usize> = (0..150).step_by(13).collect();
        let sim = engine.similar_nodes(&nodes, 5).unwrap();
        let links = engine.recommend_links(&nodes, 5, &[]).unwrap();
        for (i, &v) in nodes.iter().enumerate() {
            let want: Vec<Hit> = q
                .similar_nodes(v, 5)
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(sim[i], want, "similar diverged at {v}");
            let want: Vec<Hit> = q
                .recommend_links(v, 5, &[])
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(links[i], want, "links diverged at {v}");
        }
    }

    #[test]
    fn exact_and_ann_engines_share_the_score_scale() {
        let emb = fixture();
        let flat = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 1);
        let hnsw = ServeEngine::build(emb, &IndexSpec::Hnsw(HnswConfig::default()), 1);
        let nodes = [0usize, 7, 33];
        let a = flat.similar_nodes(&nodes, 5).unwrap();
        let b = hnsw.similar_nodes(&nodes, 5).unwrap();
        for (fa, fb) in a.iter().zip(&b) {
            for h in fa.iter().chain(fb.iter()) {
                assert!((-2.0 - 1e-9..=2.0 + 1e-9).contains(&h.score));
            }
            // Wherever both backends return the same node, the score is
            // identical — one documented scale, not two.
            for ha in fa {
                if let Some(hb) = fb.iter().find(|h| h.node == ha.node) {
                    assert_eq!(ha.score, hb.score);
                }
            }
        }
    }

    #[test]
    fn inserted_node_is_served_without_rebuild_and_compaction_folds_it() {
        let g0 = generate_sbm(&SbmConfig {
            nodes: 120,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 15,
            attrs_per_node: 3.0,
            seed: 4,
            ..Default::default()
        });
        let cfg = PaneConfig::builder().dimension(16).seed(2).build();
        let old = Pane::new(cfg.clone()).embed(&g0).unwrap();
        let mut engine = ServeEngine::build(
            old.clone(),
            &IndexSpec::Ivf(IvfConfig {
                nlist: 8,
                nprobe: 8,
                ..Default::default()
            }),
            2,
        );

        // A new node arrives: grow the graph, warm-restart offline (the
        // pane-core incremental path), then push only the new node's rows.
        let n = g0.num_nodes();
        let mut b = pane_graph::GraphBuilder::new(n + 1, g0.num_attributes());
        for (i, j, _) in g0.adjacency().iter() {
            b.add_edge(i, j);
        }
        for (v, r, w) in g0.attributes().iter() {
            b.add_attribute(v, r, w);
        }
        b.add_edge(n, 0);
        b.add_edge(1, n);
        b.add_attribute(n, 0, 1.0);
        let g1 = b.build();
        let warm = reembed_warm(&cfg, &g1, &grow_embedding(&old, 1), 2).unwrap();

        let id = engine
            .insert(warm.forward.row(n), warm.backward.row(n))
            .unwrap();
        assert_eq!(id, n);
        assert_eq!(engine.num_nodes(), n + 1);
        assert_eq!(engine.node_stats().delta, 1);

        // The fresh node is immediately queryable: its own top-1 under
        // the unified scale is itself-excluded, so search *for* it and
        // check it can be *found* as a neighbor of its closest peer.
        let sim = engine.similar_nodes(&[id], 5).unwrap();
        assert_eq!(sim[0].len(), 5);
        let peer = sim[0][0].node;
        let back = engine.similar_nodes(&[peer], 120).unwrap();
        assert!(
            back[0].iter().any(|h| h.node == id),
            "inserted node never surfaces as a neighbor"
        );

        // Compaction folds the delta into the rebuilt base.
        let folded = engine.compact();
        assert_eq!(folded, 1);
        assert_eq!(engine.node_stats().delta, 0);
        assert_eq!(engine.node_stats().base, n + 1);
        let sim2 = engine.similar_nodes(&[id], 5).unwrap();
        assert_eq!(sim2[0].len(), 5);
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        let emb = fixture();
        let mut engine = ServeEngine::build(emb, &IndexSpec::Flat, 1);
        assert!(matches!(
            engine.similar_nodes(&[9999], 3),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.similar_nodes(&[], 3),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            engine.insert(&[1.0], &[1.0]),
            Err(ServeError::BadRequest(_))
        ));
        let k2 = engine.half_dim();
        assert!(matches!(
            engine.insert(&vec![f64::NAN; k2], &vec![0.0; k2]),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn mismatched_prebuilt_indexes_are_rejected() {
        let emb = fixture();
        let wrong = IndexSpec::Flat.build(&emb.backward, Metric::InnerProduct, 1);
        let link = IndexSpec::Flat.build(&emb.backward, Metric::InnerProduct, 1);
        assert!(matches!(
            ServeEngine::new(emb, wrong, link, 1),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn engine_backends_agree_with_flat_query_backend() {
        // QueryBackend::Flat (per-query machinery) and the daemon engine
        // must agree bit-for-bit — same kernels, same unified scale.
        let emb = fixture();
        let q = EmbeddingQuery::with_backend(&emb, &QueryBackend::Flat);
        let engine = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 3);
        for v in (0..150).step_by(29) {
            let want: Vec<Hit> = q
                .similar_nodes(v, 4)
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(engine.similar_nodes(&[v], 4).unwrap()[0], want);
        }
    }
}
