//! Sharded serving: one engine per store shard, routed by `node_id % N`,
//! merged under the shared score order.
//!
//! [`ShardedEngine`] opens every shard of a `pane-store` sharded root as
//! its own [`ServeEngine`] (each with its own base generation, delta
//! segments, and insert-ahead log) and presents the union as a single
//! [`ServeBackend`]:
//!
//! * **queries** — the owner shard supplies the query vector (classifier
//!   features / `q = X_f·YᵀY`; every shard holds the full `Y`, so link
//!   query vectors are bit-identical regardless of owner), every shard
//!   answers over its local index, and the per-shard top-k lists are
//!   merged under the *same* total order every index uses
//!   (`topk::cmp_ranked`: score desc, `NaN` last, ties by ascending
//!   global id). With exact (flat) shards the merged top-k is therefore
//!   **bit-identical** to the unsharded exact scan — each global top-k
//!   member is necessarily inside its own shard's local top-k;
//! * **inserts** — the next global id `n` routes to shard `n % N`,
//!   which WAL-appends and acknowledges; round-robin assignment keeps
//!   the shards balanced (the invariant `ShardedStore::open` checks);
//! * **compact / snapshot** — applied per shard; a snapshot commits one
//!   new generation in every shard directory.
//!
//! The layout and id arithmetic live in `pane-store` (`shard_of` /
//! `local_of` / `global_of`), so the directory split and the query
//! routing cannot disagree. This is the single-process sharding path; a
//! multi-daemon deployment points one `pane serve --store` at each shard
//! directory and merges in a thin proxy with the same comparator.

use crate::engine::{
    Hit, IndexStats, QuerySpace, ServeBackend, ServeEngine, ServeError, SnapshotOutcome,
    StatusReport, StoreReport,
};
use crate::obs::ServeObs;
use pane_index::topk;
use pane_index::VectorIndex;
use pane_linalg::DenseMatrix;
use pane_obs::{latency_buckets, Histogram};
use pane_parallel::{even_ranges_nonempty, map_blocks};
use pane_store::{global_of, local_of, shard_of, ShardedStore};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// N shard engines behind one global id space. See the [module docs](self).
pub struct ShardedEngine {
    shards: Vec<ServeEngine>,
    threads: usize,
    /// Fan-out + merge latency (unregistered until `attach_obs`).
    fanout: Arc<Histogram>,
}

impl ShardedEngine {
    /// Opens every shard of a sharded store root (replaying each WAL).
    pub fn open(root: &Path, threads: usize) -> Result<Self, ServeError> {
        let opened = ShardedStore::open(root)?;
        let threads = threads.max(1);
        Ok(Self {
            shards: opened
                .into_iter()
                .map(|o| ServeEngine::from_open_store(o, threads))
                .collect(),
            threads,
            fanout: Arc::new(Histogram::new(&latency_buckets())),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total served nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.num_nodes()).sum()
    }

    /// Per-direction embedding width `k/2`.
    pub fn half_dim(&self) -> usize {
        self.shards[0].half_dim()
    }

    fn check_nodes(&self, nodes: &[usize]) -> Result<(), ServeError> {
        crate::engine::check_nodes(self.num_nodes(), nodes)
    }

    /// Runs `queries` against one index of every shard and merges each
    /// query's per-shard hit lists (local ids mapped to global) under
    /// the shared total order.
    ///
    /// Shards are searched **concurrently** under the engine's thread
    /// budget — sharded query latency tracks the slowest shard, not the
    /// sum of all shards. The budget is split: shards are partitioned
    /// into `min(threads, shards)` groups searched in parallel, and each
    /// shard's own `batch_search` gets `threads / groups` workers, so
    /// total concurrency never exceeds `threads`. `batch_search` is
    /// thread-count invariant and the merge below iterates shards in
    /// order, so the result is bit-identical to the old sequential scan.
    fn fan_out_merge(
        &self,
        queries: &DenseMatrix,
        fetch: usize,
        pick: impl Sync + Fn(&ServeEngine) -> &dyn VectorIndex,
    ) -> Vec<Vec<Hit>> {
        let started = Instant::now();
        let n_shards = self.shards.len();
        let groups = even_ranges_nonempty(n_shards, self.threads.min(n_shards));
        let inner_threads = (self.threads / groups.len()).max(1);
        let per_shard: Vec<Vec<Vec<pane_index::Neighbor>>> = map_blocks(&groups, |_, range| {
            range
                .map(|s| pick(&self.shards[s]).batch_search(queries, fetch, inner_threads))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        let merged = (0..queries.rows())
            .map(|qi| {
                topk::select(
                    per_shard.iter().enumerate().flat_map(|(s, batched)| {
                        batched[qi]
                            .iter()
                            .map(move |h| (global_of(s, h.index, n_shards), h.score))
                    }),
                    fetch,
                )
                .into_iter()
                .map(|h| Hit {
                    node: h.index,
                    score: h.score,
                })
                .collect()
            })
            .collect();
        self.fanout.observe_duration(started.elapsed());
        merged
    }
}

impl ServeBackend for ShardedEngine {
    fn similar_nodes(&self, nodes: &[usize], k: usize) -> Result<Vec<Vec<Hit>>, ServeError> {
        let rows = self.query_vectors(QuerySpace::Similar, nodes)?;
        let queries = DenseMatrix::from_rows(&rows);
        let merged = self.fan_out_merge(&queries, k + 1, |e| e.node_index());
        Ok(nodes
            .iter()
            .zip(merged)
            .map(|(&v, hits)| hits.into_iter().filter(|h| h.node != v).take(k).collect())
            .collect())
    }

    fn recommend_links(
        &self,
        nodes: &[usize],
        k: usize,
        exclude: &[usize],
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        let rows = self.query_vectors(QuerySpace::Links, nodes)?;
        let queries = DenseMatrix::from_rows(&rows);
        let fetch = k + exclude.len() + 1;
        let merged = self.fan_out_merge(&queries, fetch, |e| e.link_index());
        Ok(nodes
            .iter()
            .zip(merged)
            .map(|(&src, hits)| {
                hits.into_iter()
                    .filter(|h| h.node != src && !exclude.contains(&h.node))
                    .take(k)
                    .collect()
            })
            .collect())
    }

    fn query_vectors(
        &self,
        space: QuerySpace,
        nodes: &[usize],
    ) -> Result<Vec<Vec<f64>>, ServeError> {
        self.check_nodes(nodes)?;
        let n_shards = self.shards.len();
        Ok(nodes
            .iter()
            .map(|&v| {
                let owner = &self.shards[shard_of(v, n_shards)];
                let local = local_of(v, n_shards);
                match space {
                    QuerySpace::Similar => owner.embedding().classifier_features(local),
                    QuerySpace::Links => owner
                        .embedding()
                        .link_query_vector_with(owner.gram(), local),
                }
            })
            .collect())
    }

    fn search_raw(
        &self,
        space: QuerySpace,
        queries: &DenseMatrix,
        fetch: usize,
    ) -> Result<Vec<Vec<Hit>>, ServeError> {
        if queries.rows() == 0 {
            return Err(ServeError::BadRequest("empty query batch".into()));
        }
        let want = space.dim(self.half_dim());
        if queries.cols() != want {
            return Err(ServeError::BadRequest(format!(
                "{}-space queries must have {want} entries (got {})",
                space.name(),
                queries.cols()
            )));
        }
        Ok(match space {
            QuerySpace::Similar => self.fan_out_merge(queries, fetch, |e| e.node_index()),
            QuerySpace::Links => self.fan_out_merge(queries, fetch, |e| e.link_index()),
        })
    }

    fn insert(&mut self, forward: &[f64], backward: &[f64]) -> Result<usize, ServeError> {
        let n_shards = self.shards.len();
        let global = self.num_nodes();
        let owner = shard_of(global, n_shards);
        let local = self.shards[owner].insert(forward, backward)?;
        debug_assert_eq!(local, local_of(global, n_shards));
        Ok(global)
    }

    fn compact(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.compact()).sum()
    }

    fn snapshot(&mut self) -> Result<SnapshotOutcome, ServeError> {
        // Shard snapshots commit independently (each shard stays
        // internally consistent); a mid-loop failure therefore names
        // exactly which shards already committed, and a retry converges
        // — a shard snapshotted twice just writes another generation.
        let mut folded = 0;
        let mut generation = 0;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let out = shard.snapshot().map_err(|e| {
                ServeError::Store(pane_store::StoreError::Format(format!(
                    "shard {s} snapshot failed ({e}); shards 0..{s} already committed their \
                     new generations — each shard is still consistent, retry the snapshot \
                     to converge the remainder"
                )))
            })?;
            folded += out.folded;
            generation = out.generation;
        }
        Ok(SnapshotOutcome { generation, folded })
    }

    fn status(&self) -> StatusReport {
        let sum_stats = |pick: fn(&ServeEngine) -> IndexStats| {
            let first = pick(&self.shards[0]);
            IndexStats {
                kind: first.kind,
                base: self.shards.iter().map(|s| pick(s).base).sum(),
                delta: self.shards.iter().map(|s| pick(s).delta).sum(),
            }
        };
        let store = self.shards[0].store_report().map(|first| StoreReport {
            // The *minimum* across shards: "every shard is at least at
            // this generation". After an interrupted sharded snapshot
            // the shards can straddle two generations; reporting the
            // laggard surfaces the divergence instead of masking it.
            generation: self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .map(|r| r.generation)
                .min()
                .unwrap_or(first.generation),
            wal_records: self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .map(|r| r.wal_records)
                .sum(),
            wal_bytes: self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .map(|r| r.wal_bytes)
                .sum(),
            replayed: self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .map(|r| r.replayed)
                .sum(),
            // One format when the shards agree; "mixed" surfaces a
            // partially migrated root instead of masking it.
            format: if self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .all(|r| r.format == first.format)
            {
                first.format
            } else {
                "mixed"
            },
            artifact_bytes: self
                .shards
                .iter()
                .filter_map(|s| s.store_report())
                .map(|r| r.artifact_bytes)
                .sum(),
        });
        StatusReport {
            nodes: self.num_nodes(),
            half_dim: self.half_dim(),
            threads: self.threads,
            node_index: sum_stats(ServeEngine::node_stats),
            link_index: sum_stats(ServeEngine::link_stats),
            store,
            shards: Some(self.shards.len()),
        }
    }

    fn attach_obs(&mut self, obs: &ServeObs) {
        self.fanout = obs.fanout_histogram();
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.set_engine_obs(obs.engine_obs(Some(s)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_core::{Pane, PaneConfig, PaneEmbedding};
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_index::IndexSpec;

    fn fixture(nodes: usize) -> PaneEmbedding {
        let g = generate_sbm(&SbmConfig {
            nodes,
            communities: 4,
            avg_out_degree: 6.0,
            attributes: 20,
            attrs_per_node: 4.0,
            seed: 23,
            ..Default::default()
        });
        Pane::new(PaneConfig::builder().dimension(12).seed(5).build())
            .embed(&g)
            .unwrap()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_sharded_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn sharded_flat_top_k_is_bit_identical_to_unsharded_exact_scan() {
        let emb = fixture(121);
        let root = tmpdir("bitident");
        for shards in [2usize, 3] {
            std::fs::remove_dir_all(&root).ok();
            ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, shards, 2).unwrap();
            let sharded = ShardedEngine::open(&root, 2).unwrap();
            let unsharded = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 2);
            assert_eq!(sharded.num_nodes(), 121);
            let nodes: Vec<usize> = (0..121).step_by(7).collect();
            assert_eq!(
                ServeBackend::similar_nodes(&sharded, &nodes, 10).unwrap(),
                unsharded.similar_nodes(&nodes, 10).unwrap(),
                "{shards}-way similar-nodes diverged from the exact scan"
            );
            assert_eq!(
                ServeBackend::recommend_links(&sharded, &nodes, 8, &[3, 11]).unwrap(),
                unsharded.recommend_links(&nodes, 8, &[3, 11]).unwrap(),
                "{shards}-way recommend-links diverged from the exact scan"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn parallel_fan_out_is_thread_count_invariant() {
        // The shard fan-out runs concurrently under the thread budget;
        // results must not depend on how the budget splits across shards
        // (1 thread = the old sequential scan, 5 > shards oversubscribes).
        let emb = fixture(90);
        let root = tmpdir("threads");
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 3, 1).unwrap();
        let nodes: Vec<usize> = (0..90).step_by(5).collect();
        let baseline = {
            let eng = ShardedEngine::open(&root, 1).unwrap();
            (
                ServeBackend::similar_nodes(&eng, &nodes, 7).unwrap(),
                ServeBackend::recommend_links(&eng, &nodes, 7, &[1, 2]).unwrap(),
            )
        };
        for threads in [2usize, 3, 5] {
            let eng = ShardedEngine::open(&root, threads).unwrap();
            assert_eq!(
                ServeBackend::similar_nodes(&eng, &nodes, 7).unwrap(),
                baseline.0,
                "similar-nodes diverged at {threads} threads"
            );
            assert_eq!(
                ServeBackend::recommend_links(&eng, &nodes, 7, &[1, 2]).unwrap(),
                baseline.1,
                "recommend-links diverged at {threads} threads"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_raw_primitives_match_the_filtered_path() {
        let emb = fixture(61);
        let root = tmpdir("raw");
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2, 1).unwrap();
        let eng = ShardedEngine::open(&root, 2).unwrap();
        let nodes: Vec<usize> = (0..61).step_by(9).collect();
        let k = 5;
        let qv = eng.query_vectors(QuerySpace::Similar, &nodes).unwrap();
        let raw = eng
            .search_raw(QuerySpace::Similar, &DenseMatrix::from_rows(&qv), k + 1)
            .unwrap();
        let composed: Vec<Vec<Hit>> = nodes
            .iter()
            .zip(raw)
            .map(|(&v, hits)| hits.into_iter().filter(|h| h.node != v).take(k).collect())
            .collect();
        assert_eq!(
            composed,
            ServeBackend::similar_nodes(&eng, &nodes, k).unwrap()
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_inserts_route_round_robin_and_survive_reopen() {
        let emb = fixture(60);
        let n = emb.forward.rows();
        let k2 = emb.forward.cols();
        let root = tmpdir("insert");
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2, 1).unwrap();
        let probe: Vec<f64> = (0..k2).map(|i| 0.02 * (i + 1) as f64).collect();
        {
            let mut eng = ShardedEngine::open(&root, 1).unwrap();
            for i in 0..3 {
                let id = eng.insert(&probe, &probe).unwrap();
                assert_eq!(id, n + i);
            }
            let st = eng.status();
            assert_eq!(st.nodes, n + 3);
            assert_eq!(st.shards, Some(2));
            assert_eq!(st.store.unwrap().wal_records, 3);
        } // hard stop

        let eng = ShardedEngine::open(&root, 1).unwrap();
        let st = eng.status();
        assert_eq!(st.nodes, n + 3);
        assert_eq!(st.store.unwrap().replayed, 3);
        // The grown engine still answers queries over the inserted ids.
        let hits = ServeBackend::similar_nodes(&eng, &[n, n + 1, n + 2], 4).unwrap();
        assert_eq!(hits.len(), 3);
        // Two identical inserted rows are each other's nearest neighbors
        // (scores identical, tie broken by id — across shards).
        assert_eq!(hits[0][0].node, n + 1);
        assert_eq!(hits[1][0].node, n);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sharded_snapshot_commits_every_shard() {
        let emb = fixture(40);
        let k2 = emb.forward.cols();
        let root = tmpdir("snap");
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2, 1).unwrap();
        let mut eng = ShardedEngine::open(&root, 1).unwrap();
        let probe = vec![0.3; k2];
        eng.insert(&probe, &probe).unwrap();
        let out = eng.snapshot().unwrap();
        assert_eq!(out.generation, 2);
        assert_eq!(out.folded, 1);
        drop(eng);
        let eng = ShardedEngine::open(&root, 1).unwrap();
        let st = eng.status();
        assert_eq!(st.nodes, 41);
        let store = st.store.unwrap();
        assert_eq!(
            (store.generation, store.wal_records, store.replayed),
            (2, 0, 0)
        );
        std::fs::remove_dir_all(&root).ok();
    }
}
