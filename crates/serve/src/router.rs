//! `pane route` — the merging query router over N shard daemons.
//!
//! [`Router`] is the multi-daemon twin of [`crate::ShardedEngine`]: one
//! `pane serve --store shard-<s>/` process per shard directory, and this
//! thin proxy speaking the *same* JSON-lines protocol on both sides. A
//! client request fans out over the shard daemons and the per-shard
//! answers merge under the shared score order:
//!
//! * **queries** (`similar-nodes` / `recommend-links`) — each node's
//!   *owner* daemon (`shard_of(v, N)`) supplies its query vector via the
//!   `query-vectors` op, every daemon answers an unfiltered `search`
//!   over its local index, and the router maps local ids to global
//!   (`global_of`) and merges each query's per-shard top-k under
//!   `topk::cmp_ranked` — exactly the in-process sharded merge, so with
//!   flat shards the routed result is **bit-identical** to both
//!   [`crate::ShardedEngine`] and the unsharded exact scan (query
//!   vectors and scores cross the wire through the shortest-roundtrip
//!   `f64` formatter, so no precision is lost);
//! * **inserts** — the next global id `total` routes to daemon
//!   `total % N` (the same round-robin id arithmetic the store layer
//!   enforces), serialized under a router-side counter; the daemon's
//!   local id maps back to the global id in the response;
//! * **stats / compact / snapshot** — fan out to every daemon and
//!   aggregate (sums; minimum generation, mirroring the in-process
//!   engine's "every shard is at least at this generation" report).
//!
//! **Degradation.** Reads survive dead shards: a down daemon simply
//! contributes no hits (and owner-less query nodes get empty result
//! lists), and the response carries `"degraded":true` plus a
//! `"shards_down":[…]` list instead of failing. Writes do not degrade —
//! an insert whose owner is down is an error, and an insert whose
//! outcome is unknown (connection died mid-request) marks the router's
//! node counter dirty so it resyncs from shard `stats` before the next
//! insert. A background health thread probes down shards every
//! [`ClientConfig::probe_interval`], so a restarted daemon rejoins
//! automatically.
//!
//! [`Router::connect`] refuses to start unless every daemon answers,
//! all report the same `half_dim`, none is itself sharded, and the
//! per-shard node counts satisfy the round-robin balance invariant —
//! i.e. the `--shards` list really is `shard-000, shard-001, …` of one
//! sharded root, in order.

use crate::client::{ClientConfig, ClientError, ShardClient};
use crate::engine::{Hit, QuerySpace};
use crate::obs::ServeObs;
use crate::protocol::{parse, Json};
use crate::server::{batch_size, error_line, hits_json, metrics_fields, LineHandler};
use pane_index::topk;
use pane_obs::{Counter, Gauge, Tracer};
use pane_store::{expected_shard_len, global_of, local_of, shard_of};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A router-level failure, rendered as the `error` field of an
/// `{"ok":false,…}` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterError(pub String);

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RouterError {}

fn bad(msg: impl Into<String>) -> RouterError {
    RouterError(msg.into())
}

struct NodeCount {
    total: usize,
    /// Set after an insert with unknown outcome; the counter must be
    /// resynced from shard `stats` before it is trusted again.
    dirty: bool,
}

struct Inner {
    clients: Vec<ShardClient>,
    half_dim: usize,
    count: Mutex<NodeCount>,
    probe_interval: Duration,
    obs: Arc<ServeObs>,
    /// Responses answered degraded (some shard contributed nothing).
    degraded: Arc<Counter>,
    /// Shards currently believed down (refreshed per response).
    shards_down: Arc<Gauge>,
}

/// The merging query router. See the [module docs](self). Implements
/// [`LineHandler`], so it runs over the same transports as an engine:
/// `serve_tcp(Arc::new(router), listener)`.
pub struct Router {
    inner: Arc<Inner>,
    stop: Arc<AtomicBool>,
    health: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Connects to one daemon per shard, in shard order, and verifies
    /// the fleet is coherent (see the [module docs](self)). All daemons
    /// must be up to *start*; afterwards reads degrade gracefully.
    pub fn connect(addrs: &[String], config: ClientConfig) -> Result<Self, RouterError> {
        Self::connect_with(
            addrs,
            config,
            Arc::new(ServeObs::for_router(Tracer::disabled())),
        )
    }

    /// [`Router::connect`] with caller-supplied observability: per-shard
    /// client metrics register in `obs`'s registry, and the router's
    /// `metrics` protocol op renders it. `pane route` builds the obs from
    /// its `--log-json` / `--slow-query-ms` flags; [`Router::connect`]
    /// uses a disabled tracer over a private registry.
    pub fn connect_with(
        addrs: &[String],
        config: ClientConfig,
        obs: Arc<ServeObs>,
    ) -> Result<Self, RouterError> {
        if addrs.is_empty() {
            return Err(bad("at least one shard address is required"));
        }
        let clients: Vec<ShardClient> = addrs
            .iter()
            .enumerate()
            .map(|(s, a)| ShardClient::with_obs(a.clone(), config.clone(), obs.client_obs(s)))
            .collect();
        let n = clients.len();
        let mut totals = vec![0usize; n];
        let mut half_dim = None;
        for (s, c) in clients.iter().enumerate() {
            let v = c
                .request(r#"{"op":"stats"}"#)
                .map_err(|e| bad(format!("shard {s} ({}): {e}", c.addr())))?;
            if v.get("shards").is_some() {
                return Err(bad(format!(
                    "shard {s} ({}) serves a sharded root itself; point the router at one \
                     plain `pane serve --store shard-…/` daemon per shard",
                    c.addr()
                )));
            }
            let nodes = v
                .get("nodes")
                .and_then(Json::as_index)
                .ok_or_else(|| bad(format!("shard {s}: stats response has no 'nodes'")))?;
            let hd = v
                .get("half_dim")
                .and_then(Json::as_index)
                .ok_or_else(|| bad(format!("shard {s}: stats response has no 'half_dim'")))?;
            match half_dim {
                None => half_dim = Some(hd),
                Some(prev) if prev != hd => {
                    return Err(bad(format!(
                        "shard {s} ({}) has half_dim {hd} but shard 0 has {prev}; \
                         these daemons do not serve the same embedding",
                        c.addr()
                    )));
                }
                Some(_) => {}
            }
            totals[s] = nodes;
        }
        let total: usize = totals.iter().sum();
        for (s, &got) in totals.iter().enumerate() {
            let want = expected_shard_len(total, s, n);
            if got != want {
                return Err(bad(format!(
                    "shard sizes {totals:?} break the round-robin balance invariant for {n} \
                     shards (shard {s} has {got} nodes, expected {want} of {total}); the \
                     --shards list must name the daemons of shard-000, shard-001, … of one \
                     sharded root, in order"
                )));
            }
        }
        let degraded = obs.registry().counter(
            "pane_router_degraded_responses_total",
            "Responses answered with degraded=true (some shard was down).",
        );
        let shards_down = obs.registry().gauge(
            "pane_router_shards_down",
            "Shards currently believed down by the router.",
        );
        obs.tracer()
            .event(pane_obs::Level::Info, "router.boot")
            .int_field("shards", clients.len() as u64)
            .int_field("nodes", total as u64)
            .emit();
        let inner = Arc::new(Inner {
            clients,
            half_dim: half_dim.expect("addrs is non-empty"),
            count: Mutex::new(NodeCount {
                total,
                dirty: false,
            }),
            probe_interval: config.probe_interval,
            obs,
            degraded,
            shards_down,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let health = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Sleep in short slices so Drop can stop the thread
                // promptly even with a long probe interval.
                let tick = Duration::from_millis(20);
                let mut since_probe = Duration::ZERO;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    since_probe += tick;
                    if since_probe >= inner.probe_interval {
                        since_probe = Duration::ZERO;
                        for c in &inner.clients {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            if c.is_down() {
                                c.probe();
                            }
                        }
                    }
                }
            })
        };
        Ok(Self {
            inner,
            stop,
            health: Some(health),
        })
    }

    /// Number of shard daemons behind this router.
    pub fn num_shards(&self) -> usize {
        self.inner.clients.len()
    }

    /// Runs `f(shard, client)` for every shard concurrently (these are
    /// network round trips; one thread per shard).
    fn fan_out<T: Send>(&self, f: impl Sync + Fn(usize, &ShardClient) -> T) -> Vec<T> {
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inner
                .clients
                .iter()
                .enumerate()
                .map(|(s, c)| scope.spawn(move || f(s, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
    }

    fn count(&self) -> MutexGuard<'_, NodeCount> {
        self.inner.count.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Re-reads every shard's node count. Strict: every daemon must
    /// answer, because inserts route by the exact total.
    fn resync(&self, count: &mut NodeCount) -> Result<(), RouterError> {
        let per = self.fan_out(|s, c| {
            c.request(r#"{"op":"stats"}"#)
                .map_err(|e| bad(format!("shard {s} ({}): {e}", c.addr())))
                .and_then(|v| {
                    v.get("nodes")
                        .and_then(Json::as_index)
                        .ok_or_else(|| bad(format!("shard {s}: stats response has no 'nodes'")))
                })
        });
        let mut total = 0;
        for r in per {
            total += r?;
        }
        count.total = total;
        count.dirty = false;
        Ok(())
    }

    /// The current global node total for read paths: a failed resync
    /// falls back to the stale count (reads degrade, writes do not).
    fn read_total(&self) -> usize {
        let mut c = self.count();
        if c.dirty {
            let _ = self.resync(&mut c);
        }
        c.total
    }

    fn dispatch(&self, req: &Json, raw: &str) -> Result<(Json, bool), RouterError> {
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("request needs a string 'op' field"))?
            .to_string();
        match op.as_str() {
            "similar-nodes" | "recommend-links" => self.query(req, &op).map(|r| (r, false)),
            "insert" => self.insert(raw).map(|r| (r, false)),
            "stats" => self.stats().map(|r| (r, false)),
            "compact" | "snapshot" => self.fan_out_write(&op).map(|r| (r, false)),
            "metrics" => {
                let mut pairs = vec![("ok", Json::Bool(true)), ("op", Json::str("metrics"))];
                pairs.extend(metrics_fields(&self.inner.obs));
                Ok((Json::obj(pairs), false))
            }
            "shutdown" => Ok((
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("op", Json::str("shutdown")),
                ]),
                true,
            )),
            other => Err(bad(format!(
                "unknown op '{other}' (similar-nodes | recommend-links | insert | compact | \
                 snapshot | stats | metrics | shutdown)"
            ))),
        }
    }

    fn response(&self, op: &str, mut fields: Vec<(&str, Json)>, down: &BTreeSet<usize>) -> Json {
        self.inner
            .shards_down
            .set(self.inner.clients.iter().filter(|c| c.is_down()).count() as i64);
        let mut pairs = vec![("ok", Json::Bool(true)), ("op", Json::str(op))];
        pairs.append(&mut fields);
        pairs.push(("degraded", Json::Bool(!down.is_empty())));
        if !down.is_empty() {
            self.inner.degraded.inc();
            pairs.push((
                "shards_down",
                Json::Arr(down.iter().map(|&s| Json::num(s)).collect()),
            ));
        }
        Json::obj(pairs)
    }

    fn query(&self, req: &Json, op: &str) -> Result<Json, RouterError> {
        let nodes = req
            .get("nodes")
            .and_then(Json::as_index_array)
            .ok_or_else(|| bad("'nodes' must be an array of node ids"))?;
        let k = match req.get("k") {
            None => 10,
            Some(v) => v
                .as_index()
                .ok_or_else(|| bad("'k' must be a non-negative integer"))?,
        };
        let (space, exclude) = if op == "similar-nodes" {
            (QuerySpace::Similar, Vec::new())
        } else {
            let exclude = match req.get("exclude") {
                None => Vec::new(),
                Some(v) => v
                    .as_index_array()
                    .ok_or_else(|| bad("'exclude' must be an array of node ids"))?,
            };
            (QuerySpace::Links, exclude)
        };
        let fetch = match space {
            QuerySpace::Similar => k + 1,
            QuerySpace::Links => k + exclude.len() + 1,
        };
        let total = self.read_total();
        if let Some(&out) = nodes.iter().find(|&&v| v >= total) {
            return Err(bad(format!(
                "node {out} out of range (serving {total} nodes)"
            )));
        }
        if nodes.is_empty() {
            return Ok(self.response(
                op,
                vec![("results", Json::Arr(Vec::new()))],
                &BTreeSet::new(),
            ));
        }
        let n = self.inner.clients.len();
        let mut down = BTreeSet::new();

        // Phase 1: owner daemons supply query vectors.
        let mut by_owner: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &v) in nodes.iter().enumerate() {
            by_owner[shard_of(v, n)].push(i);
        }
        let owner_vecs = self.fan_out(|s, c| -> Result<Option<Vec<Vec<f64>>>, RouterError> {
            if by_owner[s].is_empty() {
                return Ok(None);
            }
            let locals: Vec<Json> = by_owner[s]
                .iter()
                .map(|&i| Json::num(local_of(nodes[i], n)))
                .collect();
            let line = Json::obj(vec![
                ("op", Json::str("query-vectors")),
                ("space", Json::str(space.name())),
                ("nodes", Json::Arr(locals)),
            ])
            .to_line();
            match c.request(&line) {
                Ok(v) => {
                    let Some(Json::Arr(rows)) = v.get("vectors") else {
                        return Err(bad(format!("shard {s}: malformed query-vectors response")));
                    };
                    let parsed: Option<Vec<Vec<f64>>> =
                        rows.iter().map(Json::as_f64_array).collect();
                    let parsed = parsed.ok_or_else(|| {
                        bad(format!("shard {s}: malformed query-vectors response"))
                    })?;
                    if parsed.len() != by_owner[s].len() {
                        return Err(bad(format!("shard {s}: query-vectors length mismatch")));
                    }
                    Ok(Some(parsed))
                }
                // A dead owner degrades its query nodes to empty results.
                Err(ClientError::Down(_) | ClientError::Io(_)) => Ok(None),
                Err(e) => Err(bad(format!("shard {s} ({}): {e}", c.addr()))),
            }
        });
        let mut vector_of: Vec<Option<Vec<f64>>> = vec![None; nodes.len()];
        for (s, r) in owner_vecs.into_iter().enumerate() {
            match r? {
                Some(rows) => {
                    for (&pos, row) in by_owner[s].iter().zip(rows) {
                        vector_of[pos] = Some(row);
                    }
                }
                None => {
                    if !by_owner[s].is_empty() {
                        down.insert(s);
                    }
                }
            }
        }
        let live: Vec<usize> = (0..nodes.len())
            .filter(|&i| vector_of[i].is_some())
            .collect();
        if live.is_empty() {
            let empty = vec![Json::Arr(Vec::new()); nodes.len()];
            return Ok(self.response(op, vec![("results", Json::Arr(empty))], &down));
        }

        // Phase 2: every daemon answers an unfiltered local search.
        let rows: Vec<Json> = live
            .iter()
            .map(|&i| {
                Json::Arr(
                    vector_of[i]
                        .as_ref()
                        .expect("live positions have vectors")
                        .iter()
                        .map(|&x| Json::Num(x))
                        .collect(),
                )
            })
            .collect();
        let search_line = Json::obj(vec![
            ("op", Json::str("search")),
            ("space", Json::str(space.name())),
            ("k", Json::num(fetch)),
            ("queries", Json::Arr(rows)),
        ])
        .to_line();
        let per_shard = self.fan_out(|s, c| -> Result<Option<ShardHits>, RouterError> {
            match c.request(&search_line) {
                Ok(v) => parse_shard_hits(&v, s, n, live.len()).map(Some),
                Err(ClientError::Down(_) | ClientError::Io(_)) => Ok(None),
                Err(e) => Err(bad(format!("shard {s} ({}): {e}", c.addr()))),
            }
        });
        let mut answered = Vec::with_capacity(n);
        for (s, r) in per_shard.into_iter().enumerate() {
            match r? {
                Some(batches) => answered.push(batches),
                None => {
                    down.insert(s);
                }
            }
        }

        // Phase 3: the in-process merge — shard order, shared comparator,
        // then the same self/exclude filtering as the engines.
        let mut merged_of: Vec<Vec<Hit>> = vec![Vec::new(); nodes.len()];
        for (qi, &pos) in live.iter().enumerate() {
            let src = nodes[pos];
            let candidates = answered
                .iter()
                .flat_map(|batches| batches[qi].iter().copied());
            merged_of[pos] = topk::select(candidates, fetch)
                .into_iter()
                .map(|h| Hit {
                    node: h.index,
                    score: h.score,
                })
                .filter(|h| h.node != src && !exclude.contains(&h.node))
                .take(k)
                .collect();
        }
        Ok(self.response(op, vec![("results", hits_json(merged_of))], &down))
    }

    fn insert(&self, raw: &str) -> Result<Json, RouterError> {
        // Serialized under the counter lock: global id assignment must
        // match the round-robin order the store layer verifies.
        let mut count = self.count();
        if count.dirty {
            self.resync(&mut count)
                .map_err(|e| bad(format!("insert blocked until counts resync: {e}")))?;
        }
        let n = self.inner.clients.len();
        let owner = shard_of(count.total, n);
        let client = &self.inner.clients[owner];
        match client.request_once(raw) {
            Ok(v) => {
                let local = v
                    .get("id")
                    .and_then(Json::as_index)
                    .ok_or_else(|| bad(format!("shard {owner}: insert response has no 'id'")))?;
                let global = global_of(owner, local, n);
                if local != local_of(count.total, n) {
                    // The daemon grew outside this router; adopt its id
                    // but stop trusting the counter.
                    count.dirty = true;
                } else {
                    count.total += 1;
                }
                Ok(self.response(
                    "insert",
                    vec![("id", Json::num(global)), ("shard", Json::num(owner))],
                    &BTreeSet::new(),
                ))
            }
            Err(ClientError::OutcomeUnknown(m)) => {
                count.dirty = true;
                Err(bad(format!(
                    "insert outcome unknown on shard {owner} ({}): {m}; counts will resync",
                    client.addr()
                )))
            }
            Err(e) => Err(bad(format!(
                "insert failed: owner shard {owner} ({}) {e}",
                client.addr()
            ))),
        }
    }

    fn stats(&self) -> Result<Json, RouterError> {
        let n = self.inner.clients.len();
        let per = self.fan_out(|s, c| (s, c.request(r#"{"op":"stats"}"#)));
        let mut down = BTreeSet::new();
        let mut nodes = 0usize;
        let mut per_shard = Vec::with_capacity(n);
        for (s, r) in per {
            match r {
                Ok(v) => {
                    let shard_nodes = v
                        .get("nodes")
                        .and_then(Json::as_index)
                        .ok_or_else(|| bad(format!("shard {s}: stats response has no 'nodes'")))?;
                    nodes += shard_nodes;
                    per_shard.push(Json::obj(vec![
                        ("shard", Json::num(s)),
                        ("up", Json::Bool(true)),
                        ("nodes", Json::num(shard_nodes)),
                    ]));
                }
                Err(ClientError::Down(_) | ClientError::Io(_)) => {
                    down.insert(s);
                    per_shard.push(Json::obj(vec![
                        ("shard", Json::num(s)),
                        ("up", Json::Bool(false)),
                    ]));
                }
                Err(e) => {
                    return Err(bad(format!("shard {s}: {e}")));
                }
            }
        }
        if down.is_empty() {
            // A full sweep is an exact count — a free resync.
            let mut count = self.count();
            count.total = nodes;
            count.dirty = false;
        }
        Ok(self.response(
            "stats",
            vec![
                ("router", Json::Bool(true)),
                ("shards", Json::num(n)),
                ("nodes", Json::num(nodes)),
                ("half_dim", Json::num(self.inner.half_dim)),
                ("shard_stats", Json::Arr(per_shard)),
                (
                    "uptime_secs",
                    Json::num(self.inner.obs.uptime_secs() as usize),
                ),
                (
                    "requests_total",
                    Json::num(self.inner.obs.requests_total() as usize),
                ),
            ],
            &down,
        ))
    }

    /// `compact` / `snapshot`: fan out to every daemon, aggregate like
    /// the in-process engine (sums; minimum generation across answering
    /// shards). Down shards degrade the response; a daemon that answers
    /// with an error fails the request (partial snapshots are reported,
    /// not hidden — each shard stays internally consistent, and a retry
    /// converges).
    fn fan_out_write(&self, op: &str) -> Result<Json, RouterError> {
        let line = Json::obj(vec![("op", Json::str(op))]).to_line();
        let per = self.fan_out(|s, c| (s, c.request(&line)));
        let mut down = BTreeSet::new();
        let mut folded = 0usize;
        let mut generation: Option<usize> = None;
        for (s, r) in per {
            match r {
                Ok(v) => {
                    folded += v.get("folded").and_then(Json::as_index).unwrap_or(0);
                    if let Some(g) = v.get("generation").and_then(Json::as_index) {
                        generation = Some(generation.map_or(g, |prev| prev.min(g)));
                    }
                }
                Err(ClientError::Down(_) | ClientError::Io(_)) => {
                    down.insert(s);
                }
                Err(e) => {
                    return Err(bad(format!(
                        "shard {s} ({}) {op} failed: {e}",
                        self.inner.clients[s].addr()
                    )));
                }
            }
        }
        let mut fields = vec![("folded", Json::num(folded))];
        if let Some(g) = generation {
            fields.push(("generation", Json::num(g)));
        }
        Ok(self.response(op, fields, &down))
    }
}

impl LineHandler for Router {
    fn handle(&self, line: &str) -> (String, bool) {
        let started = Instant::now();
        let req = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.inner
                    .obs
                    .record("unknown", false, None, started.elapsed());
                return (error_line(&e.to_string()), false);
            }
        };
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let batch = batch_size(&req);
        let out = self.dispatch(&req, line);
        let ok = out.is_ok();
        let (resp, shutdown) = match out {
            Ok((resp, shutdown)) => (resp.to_line(), shutdown),
            Err(e) => (error_line(&e.0), false),
        };
        self.inner.obs.record(&op, ok, batch, started.elapsed());
        (resp, shutdown)
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
    }
}

/// One daemon's `search` answer: per-query `(global id, score)`
/// candidate lists, in query order.
type ShardHits = Vec<Vec<(usize, f64)>>;

/// Decodes one daemon's `search` response into [`ShardHits`].
fn parse_shard_hits(
    v: &Json,
    s: usize,
    n_shards: usize,
    expect_queries: usize,
) -> Result<ShardHits, RouterError> {
    let Some(Json::Arr(batches)) = v.get("results") else {
        return Err(bad(format!("shard {s}: malformed search response")));
    };
    if batches.len() != expect_queries {
        return Err(bad(format!(
            "shard {s}: search answered {} queries, expected {expect_queries}",
            batches.len()
        )));
    }
    batches
        .iter()
        .map(|b| {
            let Json::Arr(hits) = b else {
                return Err(bad(format!("shard {s}: malformed search response")));
            };
            hits.iter()
                .map(|h| {
                    let node = h.get("node").and_then(Json::as_index);
                    let score = h.get("score").and_then(Json::as_f64);
                    match (node, score) {
                        (Some(node), Some(score)) => Ok((global_of(s, node, n_shards), score)),
                        _ => Err(bad(format!("shard {s}: malformed hit in search response"))),
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::time::Duration;

    fn config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(500),
            retries: 0,
            backoff: Duration::from_millis(5),
            probe_interval: Duration::from_millis(50),
            ..Default::default()
        }
    }

    /// A fake shard daemon that answers every request with `stats_line`.
    fn fake_shard(stats_line: &'static str) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 {
                    let mut w = &stream;
                    if w.write_all(stats_line.as_bytes()).is_err() {
                        break;
                    }
                    let _ = w.write_all(b"\n");
                    line.clear();
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn connect_rejects_an_imbalanced_fleet() {
        // 5 + 2 nodes over 2 shards violates round-robin balance
        // (expected 4 + 3): the --shards list is wrong or reordered.
        let (a, ha) = fake_shard(r#"{"ok":true,"op":"stats","nodes":5,"half_dim":4}"#);
        let (b, hb) = fake_shard(r#"{"ok":true,"op":"stats","nodes":2,"half_dim":4}"#);
        let err = Router::connect(&[a, b], config())
            .err()
            .expect("must refuse");
        assert!(err.0.contains("balance"), "{err}");
        ha.join().unwrap();
        hb.join().unwrap();
    }

    #[test]
    fn connect_rejects_mismatched_embeddings_and_nested_sharding() {
        let (a, ha) = fake_shard(r#"{"ok":true,"op":"stats","nodes":4,"half_dim":4}"#);
        let (b, hb) = fake_shard(r#"{"ok":true,"op":"stats","nodes":3,"half_dim":6}"#);
        let err = Router::connect(&[a, b], config())
            .err()
            .expect("must refuse");
        assert!(err.0.contains("half_dim"), "{err}");
        ha.join().unwrap();
        hb.join().unwrap();

        let (c, hc) = fake_shard(r#"{"ok":true,"op":"stats","nodes":4,"half_dim":4,"shards":2}"#);
        let err = Router::connect(&[c], config()).err().expect("must refuse");
        assert!(err.0.contains("sharded root itself"), "{err}");
        hc.join().unwrap();
    }

    #[test]
    fn connect_requires_every_shard_up() {
        let (a, ha) = fake_shard(r#"{"ok":true,"op":"stats","nodes":4,"half_dim":4}"#);
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = Router::connect(&[a, dead], config())
            .err()
            .expect("must refuse");
        assert!(err.0.contains("shard 1"), "{err}");
        ha.join().unwrap();
    }

    #[test]
    fn router_metrics_op_reports_request_counters_and_shard_health() {
        // Two fake shards that answer everything with a stats line; the
        // canned replies satisfy connect() and the stats fan-out alike.
        let (a, ha) = fake_shard(r#"{"ok":true,"op":"stats","nodes":4,"half_dim":4}"#);
        let (b, hb) = fake_shard(r#"{"ok":true,"op":"stats","nodes":3,"half_dim":4}"#);
        let router = Router::connect(&[a, b], config()).unwrap();
        let ask = |line: &str| {
            let (resp, _) = router.handle(line);
            parse(&resp).unwrap()
        };
        let stats = ask(r#"{"op":"stats"}"#);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)), "{stats:?}");
        assert!(stats.get("uptime_secs").unwrap().as_index().is_some());
        // Recorded after dispatch: the stats request itself is not yet
        // counted when its response is rendered.
        assert_eq!(stats.get("requests_total").unwrap().as_index(), Some(0));

        let m = ask(r#"{"op":"metrics"}"#);
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)), "{m:?}");
        assert_eq!(m.get("requests_total").unwrap().as_index(), Some(1));
        let text = m.get("text").unwrap().as_str().unwrap();
        assert!(
            text.contains(r#"pane_router_requests_total{op="stats"} 1"#),
            "{text}"
        );
        assert!(text.contains(r#"pane_shard_up{shard="0"} 1"#), "{text}");
        assert!(text.contains(r#"pane_shard_up{shard="1"} 1"#));
        assert!(text.contains(r#"pane_shard_connects_total{shard="0"} 1"#));
        assert!(text.contains("pane_router_degraded_responses_total 0"));
        drop(router);
        ha.join().unwrap();
        hb.join().unwrap();
    }

    #[test]
    fn shard_hit_parsing_maps_local_ids_to_global() {
        let v = parse(
            r#"{"ok":true,"op":"search","results":[[{"node":0,"score":1.5},{"node":2,"score":0.25}],[]]}"#,
        )
        .unwrap();
        let hits = parse_shard_hits(&v, 1, 3, 2).unwrap();
        // local 0 of shard 1 in 3 shards is global 1; local 2 is global 7.
        assert_eq!(hits, vec![vec![(1, 1.5), (7, 0.25)], vec![]]);
        assert!(parse_shard_hits(&v, 1, 3, 3).is_err(), "length mismatch");
    }
}
