//! Request dispatch and the two transports (stdio JSON-lines, TCP).
//!
//! The engine — any [`ServeBackend`]: a single [`crate::ServeEngine`] or
//! a [`crate::ShardedEngine`] — sits behind an `RwLock`: searches take
//! the read lock (and run concurrently across connections), `insert` /
//! `compact` / `snapshot` take the write lock. Each TCP connection gets
//! its own thread; a `shutdown` request answers, then stops the accept
//! loop, so a scripted client (or the CI smoke step) can tear the daemon
//! down cleanly.
//!
//! Both transports are generic over [`LineHandler`], so the same accept
//! loop and bounded line reader also run the `pane route` query router
//! ([`crate::Router`]), which is not an engine behind a lock.
//!
//! Request lines are read through a **bounded** reader: a line longer
//! than [`MAX_LINE_BYTES`] is answered with a structured
//! `{"ok":false,…}` error and the connection is dropped, so a client
//! streaming bytes without a newline cannot grow daemon memory without
//! bound.

use crate::engine::{Hit, QuerySpace, ServeBackend, ServeError, StatusReport};
use crate::obs::ServeObs;
use crate::protocol::{parse, Json};
use pane_linalg::DenseMatrix;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Cap on one request (or proxied response) line. A line that exceeds it
/// is answered with a structured error and the connection is dropped —
/// large batches fit comfortably, hostile streams do not.
pub const MAX_LINE_BYTES: usize = 16 << 20;

fn read_engine<B: ServeBackend>(engine: &RwLock<B>) -> RwLockReadGuard<'_, B> {
    engine.read().unwrap_or_else(|e| e.into_inner())
}

fn write_engine<B: ServeBackend>(engine: &RwLock<B>) -> RwLockWriteGuard<'_, B> {
    engine.write().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn hits_json(batched: Vec<Vec<Hit>>) -> Json {
    Json::Arr(
        batched
            .into_iter()
            .map(|hits| {
                Json::Arr(
                    hits.into_iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("node", Json::num(h.node)),
                                ("score", Json::Num(h.score)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn status_json(s: &StatusReport) -> Vec<(&'static str, Json)> {
    let idx = |s: crate::engine::IndexStats| {
        Json::obj(vec![
            ("kind", Json::str(s.kind)),
            ("base", Json::num(s.base)),
            ("delta", Json::num(s.delta)),
        ])
    };
    let mut fields = vec![
        ("nodes", Json::num(s.nodes)),
        ("half_dim", Json::num(s.half_dim)),
        ("threads", Json::num(s.threads)),
        ("node_index", idx(s.node_index)),
        ("link_index", idx(s.link_index)),
    ];
    if let Some(store) = &s.store {
        fields.push((
            "store",
            Json::obj(vec![
                ("generation", Json::num(store.generation as usize)),
                ("wal_records", Json::num(store.wal_records)),
                ("wal_bytes", Json::num(store.wal_bytes as usize)),
                ("replayed", Json::num(store.replayed)),
                ("format", Json::Str(store.format.to_string())),
                ("artifact_bytes", Json::num(store.artifact_bytes as usize)),
            ]),
        ));
    }
    if let Some(shards) = s.shards {
        fields.push(("shards", Json::num(shards)));
    }
    fields.push((
        "score_scale",
        Json::str("similar-nodes: cos_f + cos_b in [-2,2]; recommend-links: Eq. 22 inner product"),
    ));
    fields
}

pub(crate) fn error_line(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
    .to_line()
}

fn require_index_array(req: &Json, key: &str) -> Result<Vec<usize>, ServeError> {
    req.get(key)
        .and_then(Json::as_index_array)
        .ok_or_else(|| ServeError::BadRequest(format!("'{key}' must be an array of node ids")))
}

fn optional_index(req: &Json, key: &str, default: usize) -> Result<usize, ServeError> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => v.as_index().ok_or_else(|| {
            ServeError::BadRequest(format!("'{key}' must be a non-negative integer"))
        }),
    }
}

fn require_f64_array(req: &Json, key: &str) -> Result<Vec<f64>, ServeError> {
    req.get(key)
        .and_then(Json::as_f64_array)
        .ok_or_else(|| ServeError::BadRequest(format!("'{key}' must be an array of numbers")))
}

fn require_space(req: &Json) -> Result<QuerySpace, ServeError> {
    let s = req
        .get("space")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("request needs a string 'space' field".into()))?;
    QuerySpace::parse(s)
        .ok_or_else(|| ServeError::BadRequest(format!("unknown space '{s}' (similar | links)")))
}

fn require_f64_matrix(req: &Json, key: &str) -> Result<DenseMatrix, ServeError> {
    let rows = match req.get(key) {
        Some(Json::Arr(rows)) => rows,
        _ => {
            return Err(ServeError::BadRequest(format!(
                "'{key}' must be an array of number arrays"
            )))
        }
    };
    let mut data = Vec::with_capacity(rows.len());
    for row in rows {
        data.push(row.as_f64_array().ok_or_else(|| {
            ServeError::BadRequest(format!("'{key}' must be an array of number arrays"))
        })?);
    }
    let cols = data.first().map_or(0, Vec::len);
    if data.iter().any(|r| r.len() != cols) {
        return Err(ServeError::BadRequest(format!(
            "'{key}' rows must all have the same length"
        )));
    }
    Ok(DenseMatrix::from_rows(&data))
}

/// Batch size of a request, when it has one: the length of its `nodes`
/// or `queries` array (what the batch-size histograms record).
pub(crate) fn batch_size(req: &Json) -> Option<usize> {
    for key in ["nodes", "queries"] {
        if let Some(Json::Arr(a)) = req.get(key) {
            return Some(a.len());
        }
    }
    None
}

fn dispatch<B: ServeBackend>(
    engine: &RwLock<B>,
    req: &Json,
    obs: Option<&ServeObs>,
) -> Result<(Json, bool), ServeError> {
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("request needs a string 'op' field".into()))?
        .to_string();
    let ok = |mut fields: Vec<(&str, Json)>| {
        let mut pairs = vec![("ok", Json::Bool(true)), ("op", Json::str(&op))];
        pairs.append(&mut fields);
        Json::obj(pairs)
    };
    match op.as_str() {
        "similar-nodes" => {
            let nodes = require_index_array(req, "nodes")?;
            let k = optional_index(req, "k", 10)?;
            let results = read_engine(engine).similar_nodes(&nodes, k)?;
            Ok((ok(vec![("results", hits_json(results))]), false))
        }
        "recommend-links" => {
            let nodes = require_index_array(req, "nodes")?;
            let k = optional_index(req, "k", 10)?;
            let exclude = match req.get("exclude") {
                None => Vec::new(),
                Some(v) => v.as_index_array().ok_or_else(|| {
                    ServeError::BadRequest("'exclude' must be an array of node ids".into())
                })?,
            };
            let results = read_engine(engine).recommend_links(&nodes, k, &exclude)?;
            Ok((ok(vec![("results", hits_json(results))]), false))
        }
        "insert" => {
            let forward = require_f64_array(req, "forward")?;
            let backward = require_f64_array(req, "backward")?;
            let id = write_engine(engine).insert(&forward, &backward)?;
            Ok((ok(vec![("id", Json::num(id))]), false))
        }
        "compact" => {
            let mut g = write_engine(engine);
            let folded = g.compact();
            let nodes = g.status().nodes;
            Ok((
                ok(vec![
                    ("folded", Json::num(folded)),
                    ("nodes", Json::num(nodes)),
                ]),
                false,
            ))
        }
        "snapshot" => {
            let mut g = write_engine(engine);
            let out = g.snapshot()?;
            let nodes = g.status().nodes;
            Ok((
                ok(vec![
                    ("generation", Json::num(out.generation as usize)),
                    ("folded", Json::num(out.folded)),
                    ("nodes", Json::num(nodes)),
                ]),
                false,
            ))
        }
        "query-vectors" => {
            let space = require_space(req)?;
            let nodes = require_index_array(req, "nodes")?;
            let vectors = read_engine(engine).query_vectors(space, &nodes)?;
            let rows = vectors
                .into_iter()
                .map(|v| Json::Arr(v.into_iter().map(Json::Num).collect()))
                .collect();
            Ok((ok(vec![("vectors", Json::Arr(rows))]), false))
        }
        "search" => {
            let space = require_space(req)?;
            let fetch = optional_index(req, "k", 10)?;
            let queries = require_f64_matrix(req, "queries")?;
            let results = read_engine(engine).search_raw(space, &queries, fetch)?;
            Ok((ok(vec![("results", hits_json(results))]), false))
        }
        "stats" => {
            let status = read_engine(engine).status();
            let mut fields = status_json(&status);
            if let Some(obs) = obs {
                fields.push(("uptime_secs", Json::num(obs.uptime_secs() as usize)));
                fields.push(("requests_total", Json::num(obs.requests_total() as usize)));
            }
            Ok((ok(fields), false))
        }
        "metrics" => {
            let Some(obs) = obs else {
                return Err(ServeError::BadRequest(
                    "this endpoint serves no metrics (observability is not attached)".into(),
                ));
            };
            Ok((ok(metrics_fields(obs)), false))
        }
        "shutdown" => Ok((ok(vec![]), true)),
        other => Err(ServeError::BadRequest(format!(
            "unknown op '{other}' (similar-nodes | recommend-links | insert | compact | \
             snapshot | stats | metrics | query-vectors | search | shutdown)"
        ))),
    }
}

/// The shared body of a `metrics` response (daemon and router): uptime,
/// total requests, the JSON metrics object (counters / gauges /
/// histogram percentiles), and the Prometheus-style text exposition.
pub(crate) fn metrics_fields(obs: &ServeObs) -> Vec<(&'static str, Json)> {
    let metrics = parse(&obs.registry().render_json())
        .expect("render_json stays inside the wire's JSON subset");
    vec![
        ("uptime_secs", Json::num(obs.uptime_secs() as usize)),
        ("requests_total", Json::num(obs.requests_total() as usize)),
        ("metrics", metrics),
        ("text", Json::str(&obs.registry().render_text())),
    ]
}

/// Handles one request line, returning the response line and whether the
/// daemon should shut down. Never panics on malformed input — every
/// failure is an `{"ok":false,…}` response.
pub fn handle_line<B: ServeBackend>(engine: &RwLock<B>, line: &str) -> (String, bool) {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return (error_line(&e.to_string()), false),
    };
    match dispatch(engine, &req, None) {
        Ok((resp, shutdown)) => (resp.to_line(), shutdown),
        Err(e) => (error_line(&e.to_string()), false),
    }
}

/// A [`ServeBackend`] behind a lock **with observability attached**: what
/// `pane serve` actually runs. Every request line is timed and recorded
/// into the shared [`ServeObs`] (per-op counters, latency and batch-size
/// histograms, the slow-query log), and the `metrics` / `stats` ops
/// answer from the same registry. [`handle_line`] over a bare `RwLock`
/// remains the uninstrumented path for embedders and tests.
pub struct ObservedHandler<B: ServeBackend> {
    engine: RwLock<B>,
    obs: Arc<ServeObs>,
}

impl<B: ServeBackend> ObservedHandler<B> {
    /// Wraps `engine`, first letting it register its own instrumentation
    /// handles (and emit its boot event) via [`ServeBackend::attach_obs`].
    pub fn new(mut engine: B, obs: Arc<ServeObs>) -> Self {
        engine.attach_obs(&obs);
        Self {
            engine: RwLock::new(engine),
            obs,
        }
    }

    /// The shared observability state.
    pub fn obs(&self) -> &Arc<ServeObs> {
        &self.obs
    }
}

impl<B: ServeBackend> LineHandler for ObservedHandler<B> {
    fn handle(&self, line: &str) -> (String, bool) {
        let started = Instant::now();
        let req = match parse(line) {
            Ok(v) => v,
            Err(e) => {
                self.obs.record("unknown", false, None, started.elapsed());
                return (error_line(&e.to_string()), false);
            }
        };
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let batch = batch_size(&req);
        let out = dispatch(&self.engine, &req, Some(&self.obs));
        let ok = out.is_ok();
        let (resp, shutdown) = match out {
            Ok((resp, shutdown)) => (resp.to_line(), shutdown),
            Err(e) => (error_line(&e.to_string()), false),
        };
        self.obs.record(&op, ok, batch, started.elapsed());
        (resp, shutdown)
    }
}

/// One JSON-lines endpoint: maps a request line to a response line plus
/// a shutdown flag. An engine behind a lock is one ([`handle_line`]);
/// the query router ([`crate::Router`]) is another — both run over the
/// same transports.
pub trait LineHandler: Send + Sync {
    /// Answers one request line. Must never panic on malformed input.
    fn handle(&self, line: &str) -> (String, bool);
}

impl<B: ServeBackend> LineHandler for RwLock<B> {
    fn handle(&self, line: &str) -> (String, bool) {
        handle_line(self, line)
    }
}

/// Outcome of one bounded line read.
pub(crate) enum LineRead {
    /// Clean end of stream with no pending bytes.
    Eof,
    /// A complete line is in the buffer (newline and any `\r` stripped).
    /// An unterminated final line before EOF also lands here.
    Line,
    /// The line exceeded the cap before its newline arrived; the buffer
    /// holds at most `max` bytes and the rest of the stream is unread.
    TooLong,
}

/// Reads one `\n`-terminated line into `buf` without ever buffering more
/// than `max` bytes — the memory-safety half of the serve path: a client
/// streaming bytes with no newline gets cut off at the cap instead of
/// growing daemon memory without bound.
pub(crate) fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return Ok(LineRead::Line);
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Serves JSON-lines request/response over any reader/writer pair (the
/// `--stdio` transport; also what each TCP connection runs). Blank lines
/// are ignored. Returns `Ok(true)` if a `shutdown` request ended the
/// session, `Ok(false)` on EOF. A request line over [`MAX_LINE_BYTES`]
/// is answered with a structured error, then the session ends (the TCP
/// transport drops the connection).
pub fn serve_lines<H: LineHandler + ?Sized, R: BufRead, W: Write>(
    handler: &H,
    mut reader: R,
    mut writer: W,
) -> std::io::Result<bool> {
    let mut buf = Vec::new();
    let respond = |writer: &mut W, resp: &str| -> std::io::Result<()> {
        writer.write_all(resp.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    };
    loop {
        match read_bounded_line(&mut reader, &mut buf, MAX_LINE_BYTES)? {
            LineRead::Eof => return Ok(false),
            LineRead::TooLong => {
                let resp = error_line(&format!(
                    "request line exceeds {MAX_LINE_BYTES} bytes; closing connection"
                ));
                respond(&mut writer, &resp)?;
                return Ok(false);
            }
            LineRead::Line => {}
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(s) => s,
            Err(_) => {
                let resp = error_line("request line is not valid UTF-8");
                respond(&mut writer, &resp)?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown) = handler.handle(line);
        respond(&mut writer, &resp)?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Whether an `accept` error is worth retrying. Resource exhaustion
/// (fd limits, socket buffers, memory) and per-connection network errors
/// Linux surfaces through `accept` clear up on their own; anything else
/// (`EBADF`, `EINVAL`, …) means the listener itself is broken and the
/// loop must exit instead of spinning on it forever.
fn is_transient_accept_error(e: &std::io::Error) -> bool {
    use std::io::ErrorKind;
    if matches!(
        e.kind(),
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::Interrupted
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
    ) {
        return true;
    }
    // EMFILE(24) | ENFILE(23) | ENOBUFS(105) | ENOMEM(12)
    matches!(e.raw_os_error(), Some(24) | Some(23) | Some(105) | Some(12))
}

/// Serves a [`LineHandler`] over TCP: one thread per connection, shared
/// state behind the handler. Returns `Ok(())` once a client issues
/// `shutdown` (its response is sent first) and all connection threads
/// have drained — connections still open at shutdown are closed
/// server-side, so an idle client cannot keep the daemon alive. A fatal
/// `accept` error (listener closed, bad fd) drains connections and
/// returns it; transient errors (fd exhaustion, aborted handshakes) back
/// off 50 ms and continue.
pub fn serve_tcp<H: LineHandler + 'static>(
    handler: Arc<H>,
    listener: TcpListener,
) -> std::io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let addr = listener.local_addr()?;
    // One (worker, socket-clone) pair per *live* connection: finished
    // entries are reaped every accept so the vector stays bounded, and
    // the clones let shutdown sever connections blocked in a read.
    let mut conns: Vec<(std::thread::JoinHandle<()>, TcpStream)> = Vec::new();
    let mut fatal = None;
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        conns.retain(|(h, _)| !h.is_finished());
        let stream = match stream {
            Ok(s) => s,
            Err(e) if is_transient_accept_error(&e) => {
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
            Err(e) => {
                fatal = Some(e);
                break;
            }
        };
        // Responses are small two-part writes (payload, then newline);
        // without TCP_NODELAY the newline sits in Nagle's buffer waiting
        // on the client's delayed ACK — tens of milliseconds added to
        // every request-response roundtrip.
        let _ = stream.set_nodelay(true);
        let Ok(watch) = stream.try_clone() else {
            continue;
        };
        let handler = Arc::clone(&handler);
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let Ok(read_half) = stream.try_clone() else {
                return;
            };
            let shutdown =
                serve_lines(&*handler, BufReader::new(read_half), &stream).unwrap_or(false);
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can observe the flag.
                let _ = TcpStream::connect(addr);
            }
        });
        conns.push((handle, watch));
    }
    for (handle, watch) in conns {
        // Sever any connection still parked in a blocking read; its
        // worker then sees EOF and exits, so the join cannot hang.
        let _ = watch.shutdown(std::net::Shutdown::Both);
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeEngine;
    use pane_core::{Pane, PaneConfig};
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_index::IndexSpec;

    fn engine() -> RwLock<ServeEngine> {
        let g = generate_sbm(&SbmConfig {
            nodes: 90,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 12,
            attrs_per_node: 3.0,
            seed: 21,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(8).seed(3).build())
            .embed(&g)
            .unwrap();
        RwLock::new(ServeEngine::build(emb, &IndexSpec::Flat, 2))
    }

    fn req(engine: &RwLock<ServeEngine>, line: &str) -> Json {
        let (resp, _) = handle_line(engine, line);
        parse(&resp).unwrap()
    }

    #[test]
    fn full_session_over_in_memory_stdio() {
        let eng = engine();
        let k2 = read_engine(&eng).half_dim();
        let half: Vec<String> = (0..k2).map(|i| format!("0.{}", i + 1)).collect();
        let vec_json = format!("[{}]", half.join(","));
        let insert = format!(r#"{{"op":"insert","forward":{vec_json},"backward":{vec_json}}}"#);
        let input = format!(
            "{}\n\n{}\n{}\n{}\n{}\n",
            r#"{"op":"similar-nodes","nodes":[0,1],"k":3}"#,
            r#"{"op":"recommend-links","nodes":[2],"k":2,"exclude":[0]}"#,
            insert,
            r#"{"op":"stats"}"#,
            r#"{"op":"shutdown"}"#,
        );
        let mut out = Vec::new();
        let ended = serve_lines(&eng, input.as_bytes(), &mut out).unwrap();
        assert!(ended, "shutdown must end the session");
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 5);
        for l in &lines {
            assert_eq!(parse(l).unwrap().get("ok"), Some(&Json::Bool(true)), "{l}");
        }
        let sim = parse(lines[0]).unwrap();
        let results = match sim.get("results") {
            Some(Json::Arr(r)) => r.clone(),
            other => panic!("bad results: {other:?}"),
        };
        assert_eq!(results.len(), 2);
        let insert = parse(lines[2]).unwrap();
        assert_eq!(insert.get("id").unwrap().as_index(), Some(90));
        let stats = parse(lines[3]).unwrap();
        assert_eq!(stats.get("nodes").unwrap().as_index(), Some(91));
        assert_eq!(
            stats
                .get("node_index")
                .unwrap()
                .get("delta")
                .unwrap()
                .as_index(),
            Some(1)
        );
        // An ephemeral engine reports no store block (nothing durable).
        assert!(stats.get("store").is_none());
    }

    #[test]
    fn malformed_and_unknown_requests_are_ok_false() {
        let eng = engine();
        for bad in [
            "not json",
            r#"{"nodes":[0]}"#,
            r#"{"op":"explode"}"#,
            r#"{"op":"similar-nodes","nodes":[9999]}"#,
            r#"{"op":"similar-nodes","nodes":"zero"}"#,
            r#"{"op":"insert","forward":[1],"backward":[]}"#,
            // Snapshot without a store directory is a clean refusal.
            r#"{"op":"snapshot"}"#,
        ] {
            let resp = req(&eng, bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{bad}");
            assert!(resp.get("error").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn snapshot_over_a_store_backed_engine_reports_generation() {
        let dir = std::env::temp_dir().join(format!("pane_server_snap_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = generate_sbm(&SbmConfig {
            nodes: 50,
            communities: 2,
            avg_out_degree: 4.0,
            attributes: 10,
            attrs_per_node: 3.0,
            seed: 2,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(8).seed(1).build())
            .embed(&g)
            .unwrap();
        pane_store::Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let eng = RwLock::new(ServeEngine::open(&dir, 1).unwrap());
        let vec_json = "[0.1,0.2,0.3,0.4]";
        let resp = req_any(
            &eng,
            &format!(r#"{{"op":"insert","forward":{vec_json},"backward":{vec_json}}}"#),
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let stats = req_any(&eng, r#"{"op":"stats"}"#);
        let store = stats.get("store").expect("store block present");
        assert_eq!(store.get("wal_records").unwrap().as_index(), Some(1));
        let snap = req_any(&eng, r#"{"op":"snapshot"}"#);
        assert_eq!(snap.get("ok"), Some(&Json::Bool(true)), "{snap:?}");
        assert_eq!(snap.get("generation").unwrap().as_index(), Some(2));
        assert_eq!(snap.get("folded").unwrap().as_index(), Some(1));
        let stats = req_any(&eng, r#"{"op":"stats"}"#);
        let store = stats.get("store").unwrap();
        assert_eq!(store.get("wal_records").unwrap().as_index(), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn req_any(engine: &RwLock<ServeEngine>, line: &str) -> Json {
        let (resp, _) = handle_line(engine, line);
        parse(&resp).unwrap()
    }

    #[test]
    fn observed_handler_serves_metrics_and_instrumented_stats() {
        use crate::obs::ServeObs;
        use pane_obs::Tracer;
        let eng = engine().into_inner().unwrap();
        let handler = ObservedHandler::new(eng, Arc::new(ServeObs::new(Tracer::disabled())));
        let ask = |line: &str| {
            let (resp, _) = handler.handle(line);
            parse(&resp).unwrap()
        };
        // A bare RwLock-backed endpoint refuses the metrics op cleanly.
        let bare = engine();
        let (resp, _) = bare.handle(r#"{"op":"metrics"}"#);
        assert_eq!(parse(&resp).unwrap().get("ok"), Some(&Json::Bool(false)));

        ask(r#"{"op":"similar-nodes","nodes":[0,1,2],"k":3}"#);
        ask(r#"{"op":"explode"}"#);
        let stats = ask(r#"{"op":"stats"}"#);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert!(stats.get("uptime_secs").unwrap().as_index().is_some());
        // similar-nodes + explode + this stats request itself... the
        // stats line records *after* dispatch, so the count covers the
        // two prior requests.
        assert_eq!(stats.get("requests_total").unwrap().as_index(), Some(2));

        let m = ask(r#"{"op":"metrics"}"#);
        assert_eq!(m.get("ok"), Some(&Json::Bool(true)), "{m:?}");
        assert_eq!(m.get("requests_total").unwrap().as_index(), Some(3));
        let text = m.get("text").unwrap().as_str().unwrap();
        assert!(
            text.contains(r#"pane_requests_total{op="similar-nodes"} 1"#),
            "{text}"
        );
        assert!(text.contains("pane_request_errors_total 1"));
        let counters = m.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(
            counters
                .get(r#"pane_requests_total{op="similar-nodes"}"#)
                .unwrap()
                .as_index(),
            Some(1)
        );
        // The batch-size histogram saw the 3-node batch.
        let hists = m.get("metrics").unwrap().get("histograms").unwrap();
        let batch = hists
            .get(r#"pane_request_batch_size{op="similar-nodes"}"#)
            .unwrap();
        assert_eq!(batch.get("count").unwrap().as_index(), Some(1));
    }

    #[test]
    fn store_backed_stats_report_wal_bytes() {
        let dir = std::env::temp_dir().join(format!("pane_server_walb_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = generate_sbm(&SbmConfig {
            nodes: 40,
            communities: 2,
            avg_out_degree: 4.0,
            attributes: 10,
            attrs_per_node: 3.0,
            seed: 6,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(8).seed(1).build())
            .embed(&g)
            .unwrap();
        pane_store::Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let eng = RwLock::new(ServeEngine::open(&dir, 1).unwrap());
        let stats = req_any(&eng, r#"{"op":"stats"}"#);
        let store = stats.get("store").expect("store block present");
        // Empty WAL: just the 8-byte magic header.
        assert_eq!(store.get("wal_bytes").unwrap().as_index(), Some(8));
        assert_eq!(
            store.get("format"),
            Some(&Json::Str("columnar".to_string()))
        );
        assert!(
            store.get("artifact_bytes").unwrap().as_index().unwrap() > 0,
            "artifact bytes must be reported"
        );
        let vec_json = "[0.1,0.2,0.3,0.4]";
        req_any(
            &eng,
            &format!(r#"{{"op":"insert","forward":{vec_json},"backward":{vec_json}}}"#),
        );
        let stats = req_any(&eng, r#"{"op":"stats"}"#);
        let store = stats.get("store").unwrap();
        // magic + header + ids + 2 * 4 floats = 8 + 16 + 16 + 64.
        assert_eq!(store.get("wal_bytes").unwrap().as_index(), Some(104));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_request_line_is_refused_and_session_ends() {
        let eng = engine();
        // A line one byte over the cap, followed by a request that must
        // never be served because the connection is dropped first.
        let mut input = vec![b'x'; MAX_LINE_BYTES + 1];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let mut out = Vec::new();
        let ended = serve_lines(&eng, &input[..], &mut out).unwrap();
        assert!(!ended);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 1, "nothing after the refusal may be served");
        let resp = parse(lines[0]).unwrap();
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert!(resp
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("exceeds"));
    }

    #[test]
    fn large_but_legal_lines_and_crlf_are_served() {
        let eng = engine();
        // Padded with spaces to well past the default BufReader chunk so
        // the bounded reader's multi-chunk path is exercised.
        let pad = " ".repeat(64 << 10);
        let input = format!("{pad}{{\"op\":\"stats\"}}\r\n{{\"op\":\"shutdown\"}}\r\n");
        let mut out = Vec::new();
        let ended = serve_lines(&eng, input.as_bytes(), &mut out).unwrap();
        assert!(ended);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        for l in &lines {
            assert_eq!(parse(l).unwrap().get("ok"), Some(&Json::Bool(true)), "{l}");
        }
    }

    #[test]
    fn invalid_utf8_is_an_error_but_not_fatal() {
        let eng = engine();
        let mut input = vec![0xff, 0xfe, b'\n'];
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let mut out = Vec::new();
        serve_lines(&eng, &input[..], &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse(lines[0]).unwrap().get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parse(lines[1]).unwrap().get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn bounded_reader_handles_unterminated_final_line() {
        let mut buf = Vec::new();
        let mut reader = &b"{\"op\":\"stats\"}"[..];
        assert!(matches!(
            read_bounded_line(&mut reader, &mut buf, 64).unwrap(),
            LineRead::Line
        ));
        assert_eq!(buf, b"{\"op\":\"stats\"}");
        assert!(matches!(
            read_bounded_line(&mut reader, &mut buf, 64).unwrap(),
            LineRead::Eof
        ));
    }

    #[test]
    fn query_vectors_and_search_ops_reconstruct_similar_nodes() {
        let eng = engine();
        let filtered = req(&eng, r#"{"op":"similar-nodes","nodes":[4],"k":3}"#);
        assert_eq!(filtered.get("ok"), Some(&Json::Bool(true)));
        let vecs = req(
            &eng,
            r#"{"op":"query-vectors","space":"similar","nodes":[4]}"#,
        );
        assert_eq!(vecs.get("ok"), Some(&Json::Bool(true)), "{vecs:?}");
        let vectors = match vecs.get("vectors") {
            Some(v) => v.to_line(),
            None => panic!("no vectors"),
        };
        let raw = req(
            &eng,
            &format!(r#"{{"op":"search","space":"similar","k":4,"queries":{vectors}}}"#),
        );
        assert_eq!(raw.get("ok"), Some(&Json::Bool(true)), "{raw:?}");
        // Drop the self-hit from the raw results; the remainder must be
        // byte-identical to the filtered path (scores crossed the wire).
        let strip = |v: &Json| -> Vec<Json> {
            match v.get("results") {
                Some(Json::Arr(batches)) => match &batches[0] {
                    Json::Arr(hits) => hits
                        .iter()
                        .filter(|h| h.get("node").unwrap().as_index() != Some(4))
                        .cloned()
                        .collect(),
                    other => panic!("bad hits: {other:?}"),
                },
                other => panic!("bad results: {other:?}"),
            }
        };
        assert_eq!(strip(&raw), strip(&filtered));
        // Malformed variants are clean errors.
        for bad in [
            r#"{"op":"search","space":"similar","queries":[[0.1],[0.1,0.2]]}"#,
            r#"{"op":"search","space":"nope","queries":[[0.1]]}"#,
            r#"{"op":"search","queries":[[0.1]]}"#,
            r#"{"op":"search","space":"similar","queries":[]}"#,
            r#"{"op":"query-vectors","space":"links","nodes":[9999]}"#,
        ] {
            let resp = req(&eng, bad);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{bad}");
        }
    }

    #[test]
    fn accept_error_classification() {
        use std::io::{Error, ErrorKind};
        for transient in [
            Error::from(ErrorKind::ConnectionAborted),
            Error::from(ErrorKind::Interrupted),
            Error::from_raw_os_error(24),  // EMFILE
            Error::from_raw_os_error(105), // ENOBUFS
        ] {
            assert!(is_transient_accept_error(&transient), "{transient:?}");
        }
        for fatal in [
            Error::from_raw_os_error(9),  // EBADF
            Error::from_raw_os_error(22), // EINVAL
            Error::from(ErrorKind::InvalidInput),
        ] {
            assert!(!is_transient_accept_error(&fatal), "{fatal:?}");
        }
    }

    #[test]
    fn torn_connection_mid_line_leaves_daemon_serving() {
        use std::io::{BufRead, BufReader, Write};
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || serve_tcp(eng, listener))
        };
        // A client that dies mid-request-line (no trailing newline).
        let mut torn = TcpStream::connect(addr).unwrap();
        torn.write_all(b"{\"op\":\"similar-nodes\",\"nod").unwrap();
        drop(torn);
        // The daemon must still serve a healthy client afterwards.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n")
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(parse(&line).unwrap().get("ok"), Some(&Json::Bool(true)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(parse(&line).unwrap().get("ok"), Some(&Json::Bool(true)));
        drop(conn);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_severs_idle_connections() {
        use std::io::{BufRead, BufReader, Write};
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || serve_tcp(eng, listener))
        };
        // An idle client that never sends a byte must not keep the
        // daemon alive past a shutdown from another client.
        let idle = TcpStream::connect(addr).unwrap();
        let mut active = TcpStream::connect(addr).unwrap();
        active.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(active.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert_eq!(parse(&line).unwrap().get("ok"), Some(&Json::Bool(true)));
        // Joins only if the server severed the idle connection.
        server.join().unwrap().unwrap();
        drop(idle);
    }

    #[test]
    fn tcp_roundtrip_with_clean_shutdown() {
        use std::io::{BufRead, BufReader, Write};
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || serve_tcp(eng, listener))
        };
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"op\":\"similar-nodes\",\"nodes\":[0],\"k\":2}\n")
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            parse(&line).unwrap().get("ok"),
            Some(&Json::Bool(true)),
            "{line}"
        );
        // A second concurrent connection is served too.
        let mut conn2 = TcpStream::connect(addr).unwrap();
        conn2.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line2 = String::new();
        BufReader::new(conn2.try_clone().unwrap())
            .read_line(&mut line2)
            .unwrap();
        assert_eq!(parse(&line2).unwrap().get("ok"), Some(&Json::Bool(true)));
        // Shutdown answers, then the server drains and joins.
        conn.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(parse(&line).unwrap().get("ok"), Some(&Json::Bool(true)));
        drop(conn);
        drop(conn2);
        server.join().unwrap().unwrap();
    }
}
