//! Serving-tier observability: one [`ServeObs`] per daemon or router.
//!
//! `pane-obs` supplies the primitives (atomic counters/gauges/histograms
//! and the JSON-lines tracer); this module fixes the **schema** the
//! serving tier exposes so daemon and router metrics cannot drift:
//!
//! * per-op request counters, latency histograms, and batch-size
//!   histograms (`<prefix>_requests_total{op=…}`,
//!   `<prefix>_request_seconds{op=…}`,
//!   `<prefix>_request_batch_size{op=…}` for the four query ops),
//!   recorded once per request line by the transport wrapper
//!   ([`crate::server::ObservedHandler`] / the router's `LineHandler`);
//! * engine durability metrics (`pane_inserts_total`,
//!   `pane_wal_append_seconds`, `pane_wal_fsync_seconds`,
//!   `pane_wal_bytes`, `pane_wal_records`, `pane_store_generation`,
//!   `pane_snapshot_seconds`, `pane_snapshots_total`), labeled
//!   `{shard="s"}` under a sharded engine;
//! * per-shard client health (`pane_shard_up{shard=…}`,
//!   `pane_shard_{connects,connect_failures,retries,outcome_unknown,
//!   down_transitions,probes}_total{shard=…}`) plus the router's
//!   `pane_router_degraded_responses_total` / `pane_router_shards_down`.
//!
//! The handles are pre-registered at attach time, so the hot path is a
//! slice scan plus a few relaxed atomics — the registry lock is only
//! taken when a `metrics` request renders the exposition.

use pane_obs::{latency_buckets, size_buckets, Counter, Gauge, Histogram, MetricsRegistry, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every protocol op, with whether it is a *query* op (batch-size
/// histogram + slow-query log eligibility).
const OPS: &[(&str, bool)] = &[
    ("similar-nodes", true),
    ("recommend-links", true),
    ("query-vectors", true),
    ("search", true),
    ("insert", false),
    ("compact", false),
    ("snapshot", false),
    ("stats", false),
    ("metrics", false),
    ("shutdown", false),
];

/// Pre-registered handles for one op.
struct OpMetrics {
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
    /// Query ops only: distribution of request batch sizes.
    batch: Option<Arc<Histogram>>,
    /// Whether the slow-query log applies to this op.
    slow: bool,
}

impl OpMetrics {
    fn register(registry: &MetricsRegistry, prefix: &str, op: &str, query: bool) -> Self {
        let labels = [("op", op)];
        Self {
            requests: registry.counter_with(
                &format!("{prefix}_requests_total"),
                "Requests served, by protocol op.",
                &labels,
            ),
            latency: registry.histogram_with(
                &format!("{prefix}_request_seconds"),
                "Request latency in seconds, by protocol op.",
                &labels,
                &latency_buckets(),
            ),
            batch: query.then(|| {
                registry.histogram_with(
                    &format!("{prefix}_request_batch_size"),
                    "Batch size (nodes or queries per request), query ops only.",
                    &labels,
                    &size_buckets(),
                )
            }),
            slow: query,
        }
    }
}

/// Observability state for one serving endpoint (a `pane serve` daemon
/// or a `pane route` router): the metrics registry, the tracer, and the
/// pre-registered per-op handles. Shared via `Arc` between the transport
/// wrapper (which records requests) and the dispatcher (which answers
/// the `metrics` op from the same registry).
pub struct ServeObs {
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    start: Instant,
    total: AtomicU64,
    errors: Arc<Counter>,
    ops: Vec<(&'static str, OpMetrics)>,
    unknown: OpMetrics,
}

impl ServeObs {
    /// Observability for a `pane serve` daemon (metric prefix `pane`).
    pub fn new(tracer: Tracer) -> Self {
        Self::with_prefix(tracer, "pane")
    }

    /// Observability for a `pane route` router (metric prefix
    /// `pane_router`, so a scrape of both tiers never collides).
    pub fn for_router(tracer: Tracer) -> Self {
        Self::with_prefix(tracer, "pane_router")
    }

    fn with_prefix(tracer: Tracer, prefix: &str) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let errors = registry.counter(
            &format!("{prefix}_request_errors_total"),
            "Requests answered with {\"ok\":false}.",
        );
        let ops = OPS
            .iter()
            .map(|&(op, query)| (op, OpMetrics::register(&registry, prefix, op, query)))
            .collect();
        let unknown = OpMetrics::register(&registry, prefix, "unknown", false);
        Self {
            registry,
            tracer: Arc::new(tracer),
            start: Instant::now(),
            total: AtomicU64::new(0),
            errors,
            ops,
            unknown,
        }
    }

    /// The metrics registry (what the `metrics` protocol op renders).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The structured tracer shared by every instrumented layer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Seconds since this endpoint's observability was created (i.e.
    /// since boot — surfaced by `stats` and `metrics` responses).
    pub fn uptime_secs(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Total requests recorded (every protocol line, all ops).
    pub fn requests_total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Records one finished request: per-op counter + latency (+ batch
    /// size for query ops), the error counter on `ok == false`, and the
    /// slow-query log when a query op exceeds the tracer's threshold.
    pub fn record(&self, op: &str, ok: bool, batch: Option<usize>, dur: Duration) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let m = self
            .ops
            .iter()
            .find(|(name, _)| *name == op)
            .map_or(&self.unknown, |(_, m)| m);
        m.requests.inc();
        m.latency.observe_duration(dur);
        if let (Some(h), Some(b)) = (&m.batch, batch) {
            h.observe(b as f64);
        }
        if !ok {
            self.errors.inc();
        }
        if m.slow {
            self.tracer.slow_query(op, batch.unwrap_or(0), dur);
        }
    }

    /// Engine-layer handles, labeled `{shard="s"}` when the engine is
    /// one shard of a [`crate::ShardedEngine`].
    pub(crate) fn engine_obs(&self, shard: Option<usize>) -> EngineObs {
        let s = shard.map(|s| s.to_string());
        let labels: Vec<(&str, &str)> = s.iter().map(|s| ("shard", s.as_str())).collect();
        EngineObs {
            tracer: Arc::clone(&self.tracer),
            inserts: self.registry.counter_with(
                "pane_inserts_total",
                "Nodes ingested by the engine.",
                &labels,
            ),
            wal_append: self.registry.histogram_with(
                "pane_wal_append_seconds",
                "Insert-ahead log record write duration.",
                &labels,
                &latency_buckets(),
            ),
            wal_fsync: self.registry.histogram_with(
                "pane_wal_fsync_seconds",
                "Insert-ahead log fsync duration.",
                &labels,
                &latency_buckets(),
            ),
            wal_bytes: self.registry.gauge_with(
                "pane_wal_bytes",
                "Bytes currently in the insert-ahead log.",
                &labels,
            ),
            wal_records: self.registry.gauge_with(
                "pane_wal_records",
                "Records currently in the insert-ahead log.",
                &labels,
            ),
            generation: self.registry.gauge_with(
                "pane_store_generation",
                "Current on-disk base generation.",
                &labels,
            ),
            snapshot_seconds: self.registry.histogram_with(
                "pane_snapshot_seconds",
                "Durable snapshot duration (rebuild + commit).",
                &labels,
                &latency_buckets(),
            ),
            snapshots: self.registry.counter_with(
                "pane_snapshots_total",
                "Durable snapshots committed.",
                &labels,
            ),
        }
    }

    /// The sharded engine's fan-out latency histogram.
    pub(crate) fn fanout_histogram(&self) -> Arc<Histogram> {
        self.registry.histogram(
            "pane_fanout_seconds",
            "Sharded query fan-out + merge duration.",
            &latency_buckets(),
        )
    }

    /// Router-side shard-client handles for shard `shard`.
    pub(crate) fn client_obs(&self, shard: usize) -> Arc<ClientObs> {
        let s = shard.to_string();
        let labels = [("shard", s.as_str())];
        let obs = ClientObs {
            tracer: Arc::clone(&self.tracer),
            connects: self.registry.counter_with(
                "pane_shard_connects_total",
                "Successful TCP connects to the shard daemon.",
                &labels,
            ),
            connect_failures: self.registry.counter_with(
                "pane_shard_connect_failures_total",
                "Failed TCP connect attempts to the shard daemon.",
                &labels,
            ),
            retries: self.registry.counter_with(
                "pane_shard_retries_total",
                "Request retry attempts (after backoff).",
                &labels,
            ),
            outcome_unknown: self.registry.counter_with(
                "pane_shard_outcome_unknown_total",
                "Non-idempotent requests whose outcome is unknown.",
                &labels,
            ),
            down_transitions: self.registry.counter_with(
                "pane_shard_down_transitions_total",
                "Times the shard was marked down.",
                &labels,
            ),
            probes: self.registry.counter_with(
                "pane_shard_probes_total",
                "Forced health probes while marked down.",
                &labels,
            ),
            up: self.registry.gauge_with(
                "pane_shard_up",
                "1 while the shard is believed up, 0 while marked down.",
                &labels,
            ),
        };
        obs.up.set(1);
        Arc::new(obs)
    }
}

impl std::fmt::Debug for ServeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeObs")
            .field("uptime_secs", &self.uptime_secs())
            .field("requests_total", &self.requests_total())
            .finish_non_exhaustive()
    }
}

/// Engine-layer instrumentation handles. A freshly built engine holds a
/// no-op set (unregistered atomics + a disabled tracer), swapped for
/// registered handles by [`crate::ServeBackend::attach_obs`].
pub(crate) struct EngineObs {
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) inserts: Arc<Counter>,
    pub(crate) wal_append: Arc<Histogram>,
    pub(crate) wal_fsync: Arc<Histogram>,
    pub(crate) wal_bytes: Arc<Gauge>,
    pub(crate) wal_records: Arc<Gauge>,
    pub(crate) generation: Arc<Gauge>,
    pub(crate) snapshot_seconds: Arc<Histogram>,
    pub(crate) snapshots: Arc<Counter>,
}

impl EngineObs {
    /// Unregistered handles: recording is still branch-free on the hot
    /// path, it just lands in atomics nobody renders.
    pub(crate) fn noop() -> Self {
        Self {
            tracer: Arc::new(Tracer::disabled()),
            inserts: Arc::new(Counter::new()),
            wal_append: Arc::new(Histogram::new(&latency_buckets())),
            wal_fsync: Arc::new(Histogram::new(&latency_buckets())),
            wal_bytes: Arc::new(Gauge::new()),
            wal_records: Arc::new(Gauge::new()),
            generation: Arc::new(Gauge::new()),
            snapshot_seconds: Arc::new(Histogram::new(&latency_buckets())),
            snapshots: Arc::new(Counter::new()),
        }
    }
}

/// Router-side shard-client instrumentation handles (per shard).
pub(crate) struct ClientObs {
    pub(crate) tracer: Arc<Tracer>,
    pub(crate) connects: Arc<Counter>,
    pub(crate) connect_failures: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) outcome_unknown: Arc<Counter>,
    pub(crate) down_transitions: Arc<Counter>,
    pub(crate) probes: Arc<Counter>,
    pub(crate) up: Arc<Gauge>,
}

impl ClientObs {
    /// Unregistered handles for clients built without a router obs.
    pub(crate) fn noop() -> Arc<Self> {
        Arc::new(Self {
            tracer: Arc::new(Tracer::disabled()),
            connects: Arc::new(Counter::new()),
            connect_failures: Arc::new(Counter::new()),
            retries: Arc::new(Counter::new()),
            outcome_unknown: Arc::new(Counter::new()),
            down_transitions: Arc::new(Counter::new()),
            probes: Arc::new(Counter::new()),
            up: Arc::new(Gauge::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_ops_and_counts_errors() {
        let obs = ServeObs::new(Tracer::disabled());
        obs.record("similar-nodes", true, Some(4), Duration::from_micros(120));
        obs.record("insert", true, None, Duration::from_micros(80));
        obs.record("explode", false, None, Duration::from_micros(10));
        assert_eq!(obs.requests_total(), 3);
        let text = obs.registry().render_text();
        assert!(
            text.contains(r#"pane_requests_total{op="similar-nodes"} 1"#),
            "{text}"
        );
        assert!(text.contains(r#"pane_requests_total{op="insert"} 1"#));
        assert!(text.contains(r#"pane_requests_total{op="unknown"} 1"#));
        assert!(text.contains("pane_request_errors_total 1"));
        // Batch sizes only exist for query ops.
        assert!(text.contains(r#"pane_request_batch_size_count{op="similar-nodes"} 1"#));
        assert!(!text.contains(r#"pane_request_batch_size_count{op="insert"}"#));
    }

    #[test]
    fn router_prefix_keeps_metric_names_disjoint() {
        let obs = ServeObs::for_router(Tracer::disabled());
        obs.record("stats", true, None, Duration::from_micros(50));
        let text = obs.registry().render_text();
        assert!(text.contains(r#"pane_router_requests_total{op="stats"} 1"#));
        assert!(!text.contains("\npane_requests_total"));
    }

    #[test]
    fn client_obs_starts_up_and_engine_obs_labels_shards() {
        let obs = ServeObs::new(Tracer::disabled());
        let c = obs.client_obs(2);
        c.retries.inc();
        let _e = obs.engine_obs(Some(2));
        let text = obs.registry().render_text();
        assert!(text.contains(r#"pane_shard_up{shard="2"} 1"#), "{text}");
        assert!(text.contains(r#"pane_shard_retries_total{shard="2"} 1"#));
        assert!(text.contains(r#"pane_inserts_total{shard="2"} 0"#));
    }
}
