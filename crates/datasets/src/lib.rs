#![warn(missing_docs)]
//! The dataset zoo — synthetic analogues of the eight datasets in Table 3
//! of the PANE paper.
//!
//! The real datasets (Cora … MAG, up to 59.3M nodes / 0.98B edges) are not
//! redistributable and exceed single-core CI budgets; each zoo entry is a
//! seeded [`pane_graph::gen::SbmConfig`] shaped to the dataset's
//! character — node/edge/attribute ratios, label count, directedness,
//! single- vs multi-label — at a laptop-friendly default scale. The real
//! Table 3 statistics are kept alongside ([`DatasetZoo::paper_stats`]) so
//! `exp_table3` can print paper-vs-generated side by side, and
//! [`DatasetZoo::generate_scaled`] lets the scalability experiments grow or
//! shrink any entry.
//!
//! Users with the real dumps can load them through [`pane_graph::io`]
//! instead; every experiment binary accepts either source.

use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_graph::AttributedGraph;

/// The real-dataset statistics from Table 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// `|V|`.
    pub nodes: f64,
    /// `|E_V|`.
    pub edges: f64,
    /// `|R|`.
    pub attributes: f64,
    /// `|E_R|`.
    pub attr_entries: f64,
    /// `|L|`.
    pub labels: usize,
    /// Whether the paper treats the dataset as directed.
    pub directed: bool,
}

/// A generated dataset plus its provenance.
pub struct GeneratedDataset {
    /// Which zoo entry produced it.
    pub zoo: DatasetZoo,
    /// Scale factor used.
    pub scale: f64,
    /// The graph.
    pub graph: AttributedGraph,
}

/// The eight dataset analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetZoo {
    /// Cora-like: small directed citation graph, sparse edges, rich
    /// binary bag-of-words attributes, 7 classes.
    CoraLike,
    /// Citeseer-like: small directed citation graph, very sparse edges,
    /// the largest attribute-to-node ratio, 6 classes.
    CiteseerLike,
    /// Facebook-like: small dense undirected social graph, many ego-circle
    /// labels (multi-label).
    FacebookLike,
    /// Pubmed-like: mid-size directed citation graph, few attributes but
    /// many attribute entries, 3 classes.
    PubmedLike,
    /// Flickr-like: mid-size dense undirected social graph, wide attribute
    /// space, 9 classes.
    FlickrLike,
    /// Google+-like: large directed social graph, dense edges, many
    /// attribute entries per node, hundreds of labels (multi-label).
    GooglePlusLike,
    /// TWeibo-like: very large directed social graph, modest attributes,
    /// 8 age-band labels.
    TWeiboLike,
    /// MAG-like: the largest directed citation graph, modest attribute
    /// space, 100 field-of-study labels (multi-label).
    MagLike,
}

impl DatasetZoo {
    /// All eight entries, in Table 3 order.
    pub const ALL: [DatasetZoo; 8] = [
        DatasetZoo::CoraLike,
        DatasetZoo::CiteseerLike,
        DatasetZoo::FacebookLike,
        DatasetZoo::PubmedLike,
        DatasetZoo::FlickrLike,
        DatasetZoo::GooglePlusLike,
        DatasetZoo::TWeiboLike,
        DatasetZoo::MagLike,
    ];

    /// The five small/mid entries used by the parameter-sensitivity
    /// experiments (Figures 5–6 use Cora, Citeseer, Facebook, Pubmed,
    /// Flickr).
    pub const SMALL: [DatasetZoo; 5] = [
        DatasetZoo::CoraLike,
        DatasetZoo::CiteseerLike,
        DatasetZoo::FacebookLike,
        DatasetZoo::PubmedLike,
        DatasetZoo::FlickrLike,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetZoo::CoraLike => "cora-like",
            DatasetZoo::CiteseerLike => "citeseer-like",
            DatasetZoo::FacebookLike => "facebook-like",
            DatasetZoo::PubmedLike => "pubmed-like",
            DatasetZoo::FlickrLike => "flickr-like",
            DatasetZoo::GooglePlusLike => "google+-like",
            DatasetZoo::TWeiboLike => "tweibo-like",
            DatasetZoo::MagLike => "mag-like",
        }
    }

    /// The corresponding real-dataset statistics (Table 3).
    pub fn paper_stats(&self) -> PaperStats {
        let k = 1e3;
        let m = 1e6;
        match self {
            DatasetZoo::CoraLike => PaperStats {
                nodes: 2.7 * k,
                edges: 5.4 * k,
                attributes: 1.4 * k,
                attr_entries: 49.2 * k,
                labels: 7,
                directed: true,
            },
            DatasetZoo::CiteseerLike => PaperStats {
                nodes: 3.3 * k,
                edges: 4.7 * k,
                attributes: 3.7 * k,
                attr_entries: 105.2 * k,
                labels: 6,
                directed: true,
            },
            DatasetZoo::FacebookLike => PaperStats {
                nodes: 4.0 * k,
                edges: 88.2 * k,
                attributes: 1.3 * k,
                attr_entries: 33.3 * k,
                labels: 193,
                directed: false,
            },
            DatasetZoo::PubmedLike => PaperStats {
                nodes: 19.7 * k,
                edges: 44.3 * k,
                attributes: 0.5 * k,
                attr_entries: 988.0 * k,
                labels: 3,
                directed: true,
            },
            DatasetZoo::FlickrLike => PaperStats {
                nodes: 7.6 * k,
                edges: 479.5 * k,
                attributes: 12.1 * k,
                attr_entries: 182.5 * k,
                labels: 9,
                directed: false,
            },
            DatasetZoo::GooglePlusLike => PaperStats {
                nodes: 107.6 * k,
                edges: 13.7 * m,
                attributes: 15.9 * k,
                attr_entries: 300.6 * m,
                labels: 468,
                directed: true,
            },
            DatasetZoo::TWeiboLike => PaperStats {
                nodes: 2.3 * m,
                edges: 50.7 * m,
                attributes: 1.7 * k,
                attr_entries: 16.8 * m,
                labels: 8,
                directed: true,
            },
            DatasetZoo::MagLike => PaperStats {
                nodes: 59.3 * m,
                edges: 978.2 * m,
                attributes: 2.0 * k,
                attr_entries: 434.4 * m,
                labels: 100,
                directed: true,
            },
        }
    }

    /// Generator template at default scale (scale = 1.0). The small
    /// datasets keep their real node counts; the three large ones are
    /// shrunk to single-core-tractable sizes (documented in DESIGN.md §4)
    /// while preserving degree, attribute and label ratios.
    pub fn config(&self, scale: f64, seed: u64) -> SbmConfig {
        assert!(scale > 0.0, "scale must be positive");
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(8);
        let base = SbmConfig {
            gamma: 2.5,
            p_in: 0.8,
            attr_noise: 0.15,
            extra_label_prob: 0.15,
            seed,
            ..SbmConfig::default()
        };
        match self {
            DatasetZoo::CoraLike => SbmConfig {
                nodes: s(2708),
                communities: 7,
                avg_out_degree: 2.0,
                attributes: 700.min_nonzero(scale),
                attrs_per_node: 18.0,
                undirected: false,
                ..base
            },
            DatasetZoo::CiteseerLike => SbmConfig {
                nodes: s(3300),
                communities: 6,
                avg_out_degree: 1.5,
                attributes: 1200.min_nonzero(scale),
                attrs_per_node: 32.0,
                undirected: false,
                ..base
            },
            DatasetZoo::FacebookLike => SbmConfig {
                nodes: s(4000),
                communities: 24,
                avg_out_degree: 11.0, // undirected doubling brings |E_V| near 88K
                attributes: 650.min_nonzero(scale),
                attrs_per_node: 8.0,
                undirected: true,
                multi_label: true,
                ..base
            },
            DatasetZoo::PubmedLike => SbmConfig {
                nodes: s(8000),
                communities: 3,
                avg_out_degree: 2.3,
                attributes: 400.min_nonzero(scale),
                attrs_per_node: 40.0,
                undirected: false,
                ..base
            },
            DatasetZoo::FlickrLike => SbmConfig {
                nodes: s(5000),
                communities: 9,
                avg_out_degree: 25.0,
                attributes: 900.min_nonzero(scale),
                attrs_per_node: 24.0,
                undirected: true,
                ..base
            },
            DatasetZoo::GooglePlusLike => SbmConfig {
                nodes: s(15000),
                communities: 60,
                avg_out_degree: 25.0,
                attributes: 600.min_nonzero(scale),
                attrs_per_node: 40.0,
                undirected: false,
                multi_label: true,
                ..base
            },
            DatasetZoo::TWeiboLike => SbmConfig {
                nodes: s(40000),
                communities: 8,
                avg_out_degree: 18.0,
                attributes: 300.min_nonzero(scale),
                attrs_per_node: 7.0,
                undirected: false,
                ..base
            },
            DatasetZoo::MagLike => SbmConfig {
                nodes: s(60000),
                communities: 40,
                avg_out_degree: 16.0,
                attributes: 250.min_nonzero(scale),
                attrs_per_node: 7.0,
                undirected: false,
                multi_label: true,
                ..base
            },
        }
    }

    /// Generates at default scale.
    pub fn generate(&self, seed: u64) -> GeneratedDataset {
        self.generate_scaled(1.0, seed)
    }

    /// Generates at the given scale factor (node count scales linearly;
    /// attribute space scales with √scale to keep `F'` tractable).
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> GeneratedDataset {
        let cfg = self.config(scale, seed);
        GeneratedDataset {
            zoo: *self,
            scale,
            graph: generate_sbm(&cfg),
        }
    }
}

/// Attribute-count scaling helper: `d · min(1, √scale)`, at least 4.
trait MinNonzero {
    fn min_nonzero(self, scale: f64) -> usize;
}

impl MinNonzero for usize {
    fn min_nonzero(self, scale: f64) -> usize {
        let factor = scale.sqrt().min(1.0);
        ((self as f64 * factor).round() as usize).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_generate_small_scale() {
        for zoo in DatasetZoo::ALL {
            let ds = zoo.generate_scaled(0.02, 1);
            let g = &ds.graph;
            assert!(g.num_nodes() >= 8, "{}: too few nodes", zoo.name());
            assert!(g.num_edges() > 0, "{}: no edges", zoo.name());
            assert!(
                g.num_attribute_entries() > 0,
                "{}: no attributes",
                zoo.name()
            );
            assert!(g.num_labels() > 0, "{}: no labels", zoo.name());
        }
    }

    #[test]
    fn directedness_matches_paper() {
        for zoo in DatasetZoo::ALL {
            let ds = zoo.generate_scaled(0.02, 2);
            assert_eq!(
                !ds.graph.is_undirected(),
                zoo.paper_stats().directed,
                "{}: directedness mismatch",
                zoo.name()
            );
        }
    }

    #[test]
    fn label_counts_match_config() {
        let ds = DatasetZoo::CoraLike.generate_scaled(0.1, 3);
        assert_eq!(ds.graph.num_labels(), 7);
        let ds = DatasetZoo::PubmedLike.generate_scaled(0.1, 3);
        assert_eq!(ds.graph.num_labels(), 3);
    }

    #[test]
    fn multi_label_entries_have_multilabel_nodes() {
        let ds = DatasetZoo::FacebookLike.generate_scaled(0.2, 4);
        let multi = (0..ds.graph.num_nodes())
            .filter(|&v| ds.graph.labels_of(v).len() > 1)
            .count();
        assert!(multi > 0, "facebook-like should be multi-label");
    }

    #[test]
    fn scaling_changes_node_count_linearly() {
        let small = DatasetZoo::CoraLike.generate_scaled(0.1, 5);
        let big = DatasetZoo::CoraLike.generate_scaled(0.2, 5);
        let ratio = big.graph.num_nodes() as f64 / small.graph.num_nodes() as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetZoo::FlickrLike.generate_scaled(0.05, 7);
        let b = DatasetZoo::FlickrLike.generate_scaled(0.05, 7);
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
    }

    #[test]
    fn default_scale_ratios_are_sane() {
        // Spot-check the cora-like default against Table 3 ratios: ~2 edges
        // and ~18 attribute entries per node.
        let ds = DatasetZoo::CoraLike.generate(1);
        let g = &ds.graph;
        let epn = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!((1.0..=2.5).contains(&epn), "edges per node {epn}");
        let apn = g.num_attribute_entries() as f64 / g.num_nodes() as f64;
        assert!((14.0..=20.0).contains(&apn), "attr entries per node {apn}");
    }
}
