//! Structured JSON-lines tracing: level-filtered events and duration
//! spans over a pluggable writer.
//!
//! Every emitted line is one JSON object:
//!
//! ```json
//! {"ts_us":1234,"level":"info","event":"engine.boot","replayed":7}
//! {"ts_us":9876,"level":"debug","event":"span","span":"snapshot","dur_us":41872}
//! ```
//!
//! `ts_us` is microseconds since the tracer was created, measured on the
//! **monotonic** clock — timestamps order events and never jump with wall
//! time. Slow-query reporting is a tracer concern: configure a threshold
//! with [`Tracer::with_slow_query`] and call [`Tracer::slow_query`] from
//! request paths; crossings emit a `warn`-level `slow_query` event.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{json_f64, json_string};

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Degradations a human should eventually look at.
    Warn,
    /// Lifecycle landmarks (boot, snapshot, recovery).
    Info,
    /// Per-operation detail; off by default.
    Debug,
}

impl Level {
    /// Lower-case name used in emitted lines and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a CLI-style level name; `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// A JSON-lines event/span emitter.
///
/// Construction picks the destination ([`Tracer::to_stderr`],
/// [`Tracer::to_file`], [`Tracer::to_writer`]) and the maximum level that
/// gets through; [`Tracer::disabled`] swallows everything at zero cost
/// beyond a branch.
pub struct Tracer {
    /// Maximum level emitted; `None` disables the tracer entirely.
    max_level: Option<Level>,
    epoch: Instant,
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    slow_query: Option<Duration>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("max_level", &self.max_level)
            .field("slow_query", &self.slow_query)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer that drops every event.
    pub fn disabled() -> Self {
        Self {
            max_level: None,
            epoch: Instant::now(),
            writer: Mutex::new(None),
            slow_query: None,
        }
    }

    /// Emits to stderr, keeping events at or above `level`.
    pub fn to_stderr(level: Level) -> Self {
        Self::to_writer(Box::new(io::stderr()), level)
    }

    /// Emits to an arbitrary writer, keeping events at or above `level`.
    pub fn to_writer(writer: Box<dyn Write + Send>, level: Level) -> Self {
        Self {
            max_level: Some(level),
            epoch: Instant::now(),
            writer: Mutex::new(Some(writer)),
            slow_query: None,
        }
    }

    /// Appends JSON lines to `path`, keeping events at or above `level`.
    pub fn to_file(path: &Path, level: Level) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self::to_writer(Box::new(file), level))
    }

    /// Sets the slow-query threshold (see [`Tracer::slow_query`]).
    pub fn with_slow_query(mut self, threshold: Option<Duration>) -> Self {
        self.slow_query = threshold;
        self
    }

    /// The configured slow-query threshold, if any.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        self.slow_query
    }

    /// Whether events at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        match self.max_level {
            Some(max) => level <= max,
            None => false,
        }
    }

    /// Starts an event named `name` at `level`; attach fields and call
    /// [`Event::emit`]. When the level is filtered the returned builder
    /// is inert (no allocation beyond the struct itself).
    pub fn event<'a>(&'a self, level: Level, name: &str) -> Event<'a> {
        if !self.enabled(level) {
            return Event {
                tracer: self,
                line: None,
            };
        }
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"ts_us\":{},\"level\":\"{}\",\"event\":{}",
            self.epoch.elapsed().as_micros(),
            level.as_str(),
            json_string(name)
        );
        Event {
            tracer: self,
            line: Some(line),
        }
    }

    /// Opens a span named `name`; its duration is emitted as a
    /// `{"event":"span","span":name,"dur_us":…}` line at `level` when the
    /// guard drops.
    pub fn span<'a>(&'a self, level: Level, name: &'a str) -> Span<'a> {
        Span {
            tracer: self,
            level,
            name,
            started: Instant::now(),
        }
    }

    /// Reports a request that took `dur` against the configured threshold;
    /// emits a `warn`-level `slow_query` event when `dur` reaches it.
    /// No-op when no threshold is configured.
    pub fn slow_query(&self, op: &str, batch: usize, dur: Duration) {
        let Some(threshold) = self.slow_query else {
            return;
        };
        if dur < threshold {
            return;
        }
        self.event(Level::Warn, "slow_query")
            .str_field("op", op)
            .int_field("batch", batch as u64)
            .num_field("dur_ms", dur.as_secs_f64() * 1e3)
            .num_field("threshold_ms", threshold.as_secs_f64() * 1e3)
            .emit();
    }

    fn write_line(&self, line: &str) {
        let mut guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = guard.as_mut() {
            // Tracing must never take the daemon down: swallow I/O errors.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// Builder for one event line; created by [`Tracer::event`].
#[must_use = "call emit() to write the event"]
pub struct Event<'a> {
    tracer: &'a Tracer,
    line: Option<String>,
}

impl Event<'_> {
    /// Attaches a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        if let Some(line) = self.line.as_mut() {
            let _ = write!(line, ",{}:{}", json_string(key), json_string(value));
        }
        self
    }

    /// Attaches an unsigned integer field.
    pub fn int_field(mut self, key: &str, value: u64) -> Self {
        if let Some(line) = self.line.as_mut() {
            let _ = write!(line, ",{}:{}", json_string(key), value);
        }
        self
    }

    /// Attaches a float field (non-finite values are written as `0`).
    pub fn num_field(mut self, key: &str, value: f64) -> Self {
        if let Some(line) = self.line.as_mut() {
            let _ = write!(line, ",{}:{}", json_string(key), json_f64(value));
        }
        self
    }

    /// Finishes the line and writes it.
    pub fn emit(self) {
        if let Some(mut line) = self.line {
            line.push('}');
            self.tracer.write_line(&line);
        }
    }
}

/// Guard emitting a duration event on drop; created by [`Tracer::span`].
pub struct Span<'a> {
    tracer: &'a Tracer,
    level: Level,
    name: &'a str,
    started: Instant,
}

impl Span<'_> {
    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.started.elapsed();
        self.tracer
            .event(self.level, "span")
            .str_field("span", self.name)
            .int_field("dur_us", dur.as_micros() as u64)
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Shared in-memory sink for asserting emitted lines.
    #[derive(Clone, Default)]
    struct Sink(Arc<StdMutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Sink {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Debug);
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::Warn.as_str(), "warn");
    }

    #[test]
    fn events_are_json_lines_with_fields() {
        let sink = Sink::default();
        let t = Tracer::to_writer(Box::new(sink.clone()), Level::Info);
        t.event(Level::Info, "boot")
            .int_field("replayed", 7)
            .str_field("dir", "a\"b")
            .num_field("secs", 1.5)
            .emit();
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"level\":\"info\""));
        assert!(lines[0].contains("\"event\":\"boot\""));
        assert!(lines[0].contains("\"replayed\":7"));
        assert!(lines[0].contains("\"dir\":\"a\\\"b\""));
        assert!(lines[0].contains("\"secs\":1.5"));
        assert!(lines[0].ends_with('}'));
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let sink = Sink::default();
        let t = Tracer::to_writer(Box::new(sink.clone()), Level::Warn);
        t.event(Level::Debug, "noise").emit();
        t.event(Level::Info, "noise").emit();
        t.event(Level::Warn, "kept").emit();
        t.event(Level::Error, "kept").emit();
        assert_eq!(sink.lines().len(), 2);
        assert!(!t.enabled(Level::Info));
        assert!(t.enabled(Level::Error));
    }

    #[test]
    fn disabled_tracer_swallows_everything() {
        let t = Tracer::disabled();
        assert!(!t.enabled(Level::Error));
        t.event(Level::Error, "x").int_field("k", 1).emit();
        t.slow_query("search", 4, Duration::from_secs(10));
    }

    #[test]
    fn span_emits_duration_on_drop() {
        let sink = Sink::default();
        let t = Tracer::to_writer(Box::new(sink.clone()), Level::Debug);
        {
            let _s = t.span(Level::Debug, "snapshot");
            std::thread::sleep(Duration::from_millis(2));
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"event\":\"span\""));
        assert!(lines[0].contains("\"span\":\"snapshot\""));
        let dur: u64 = lines[0]
            .split("\"dur_us\":")
            .nth(1)
            .unwrap()
            .trim_end_matches('}')
            .parse()
            .unwrap();
        assert!(dur >= 1_000, "span measured {dur}µs");
    }

    #[test]
    fn slow_query_fires_only_at_threshold() {
        let sink = Sink::default();
        let t = Tracer::to_writer(Box::new(sink.clone()), Level::Warn)
            .with_slow_query(Some(Duration::from_millis(100)));
        t.slow_query("similar-nodes", 16, Duration::from_millis(5));
        assert!(sink.lines().is_empty());
        t.slow_query("similar-nodes", 16, Duration::from_millis(250));
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"event\":\"slow_query\""));
        assert!(lines[0].contains("\"op\":\"similar-nodes\""));
        assert!(lines[0].contains("\"batch\":16"));
        assert!(lines[0].contains("\"dur_ms\":250"));
        assert!(lines[0].contains("\"threshold_ms\":100"));
    }

    #[test]
    fn file_tracer_appends_lines() {
        let dir = std::env::temp_dir().join(format!(
            "pane-obs-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        {
            let t = Tracer::to_file(&path, Level::Info).unwrap();
            t.event(Level::Info, "one").emit();
        }
        {
            let t = Tracer::to_file(&path, Level::Info).unwrap();
            t.event(Level::Info, "two").emit();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "append mode keeps prior lines");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
