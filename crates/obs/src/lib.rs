//! # pane-obs — observability for the PANE serving tier
//!
//! Std-only (zero dependencies) metrics and tracing, built for a serving
//! daemon that must stay fast while being watched:
//!
//! * [`MetricsRegistry`] — an explicit, global-free registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-boundary log-bucketed
//!   [`Histogram`]s with exact-from-bucket p50/p95/p99, rendered as a
//!   Prometheus-style text exposition ([`MetricsRegistry::render_text`])
//!   or a JSON object ([`MetricsRegistry::render_json`]).
//! * [`Tracer`] — structured JSON-lines events and duration spans,
//!   monotonic-clock timed, level-filtered, writing to stderr, a file, or
//!   any `Write + Send`, with a configurable slow-query log
//!   ([`Tracer::slow_query`]).
//!
//! Handles are plain `Arc`s: the record path is a few relaxed atomic
//! operations and never takes the registry lock, so instrumentation can
//! sit on query hot paths.
//!
//! ```
//! use pane_obs::{latency_buckets, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("pane_requests_total", "Requests served.");
//! let latency = registry.histogram(
//!     "pane_request_seconds",
//!     "Request latency.",
//!     &latency_buckets(),
//! );
//! requests.inc();
//! latency.observe(0.00042);
//! assert!(registry.render_text().contains("pane_requests_total 1"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod trace;

pub use metrics::{
    latency_buckets, size_buckets, snapshot_delta, Counter, Gauge, Histogram, MetricsRegistry,
};
pub use trace::{Event, Level, Span, Tracer};
