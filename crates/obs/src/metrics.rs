//! Atomic metrics: counters, gauges, fixed-boundary histograms, and the
//! registry that renders them.
//!
//! Everything here is lock-free on the record path (relaxed atomics); the
//! registry's mutex is taken only when creating a series or rendering an
//! exposition. There are no globals: callers own an explicit
//! [`MetricsRegistry`] and thread `Arc` handles to whoever records.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-boundary histogram with atomic buckets.
///
/// Boundaries are **upper** bounds, sorted ascending; an implicit `+Inf`
/// bucket catches everything beyond the last boundary. Quantiles are
/// *exact-from-bucket*: [`Histogram::quantile`] returns the upper boundary
/// of the bucket holding the rank-`q` observation, so the answer is a true
/// upper bound on the requested percentile (never an interpolation), and
/// observations landing in the overflow bucket report the largest finite
/// boundary.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One per boundary plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observations, stored as `f64` bit patterns.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given ascending upper boundaries.
    ///
    /// Boundaries must be non-empty, finite, and strictly increasing;
    /// violations panic (a mis-specified histogram is a programming error,
    /// not a runtime condition).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram boundaries must strictly increase");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram boundaries must be finite"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper boundaries (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), including the trailing `+Inf`
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Exact-from-bucket quantile for `q` in `[0, 1]`; `0.0` when empty.
    ///
    /// Returns the upper boundary of the bucket containing the observation
    /// of rank `ceil(q * count)`. Observations beyond the last boundary
    /// saturate to the largest finite boundary.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.bounds[i.min(self.bounds.len() - 1)];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// Log-spaced latency boundaries in seconds: `1µs · 2^k` for
/// `k = 0..=27`, i.e. 1µs up to ~134s.
pub fn latency_buckets() -> Vec<f64> {
    (0..=27).map(|k| 1e-6 * f64::from(1u32 << k)).collect()
}

/// Power-of-two size boundaries: 1, 2, 4, … 65536.
pub fn size_buckets() -> Vec<f64> {
    (0..=16).map(|k| f64::from(1u32 << k)).collect()
}

/// Metric kind, for exposition `# TYPE` lines and registration checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Series keyed by their rendered label pairs (`shard="0"`, or `""`
    /// for the unlabelled series). `BTreeMap` keeps expositions sorted
    /// and therefore golden-testable.
    series: BTreeMap<String, Handle>,
}

/// An explicit, global-free registry of metric families.
///
/// Handles returned by the `counter`/`gauge`/`histogram` constructors are
/// `Arc`s; recording through them never touches the registry lock.
/// Registering the same `(name, labels)` pair twice returns the existing
/// handle, so construction is idempotent.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or fetches) a counter with label pairs.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, Kind::Counter, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or fetches) a gauge with label pairs.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, Kind::Gauge, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or fetches) an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers (or fetches) a histogram with label pairs.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, Kind::Histogram, || {
            Handle::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked during registration"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let key = label_key(labels);
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} and {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Renders the Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, handle) in family.series.iter() {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), g.get());
                    }
                    Handle::Histogram(h) => render_text_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }

    /// Renders a JSON object form:
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`.
    ///
    /// Series keys are `name` or `name{label="v",…}`; histogram entries
    /// carry `count`, `sum`, and exact-from-bucket `p50`/`p95`/`p99`.
    /// The output stays within the strict JSON subset the serve protocol
    /// parses, so daemons can embed it structurally in responses.
    pub fn render_json(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, family) in families.iter() {
            for (labels, handle) in family.series.iter() {
                let key = format!("{name}{}", braced(labels));
                match handle {
                    Handle::Counter(c) => {
                        counters.push(format!("{}:{}", json_string(&key), c.get()))
                    }
                    Handle::Gauge(g) => gauges.push(format!("{}:{}", json_string(&key), g.get())),
                    Handle::Histogram(h) => histograms.push(format!(
                        "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        json_string(&key),
                        h.count(),
                        json_f64(h.sum()),
                        json_f64(h.quantile(0.50)),
                        json_f64(h.quantile(0.95)),
                        json_f64(h.quantile(0.99)),
                    )),
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }

    /// Captures every registered series as a flat `key → value` map:
    /// counters and gauges under their `name{labels}` key, histograms as
    /// two derived series `name{labels}_count` and `name{labels}_sum`.
    ///
    /// Two snapshots bracket a workload; [`snapshot_delta`] subtracts
    /// them to isolate what the workload itself did — the measurement
    /// surface the load harness scrapes before and after a run.
    pub fn snapshot(&self) -> BTreeMap<String, f64> {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = BTreeMap::new();
        for (name, family) in families.iter() {
            for (labels, handle) in family.series.iter() {
                let key = format!("{name}{}", braced(labels));
                match handle {
                    Handle::Counter(c) => {
                        out.insert(key, c.get() as f64);
                    }
                    Handle::Gauge(g) => {
                        out.insert(key, g.get() as f64);
                    }
                    Handle::Histogram(h) => {
                        out.insert(format!("{key}_count"), h.count() as f64);
                        out.insert(format!("{key}_sum"), h.sum());
                    }
                }
            }
        }
        out
    }
}

/// Subtracts two flat metric snapshots: `after − before`, per key.
///
/// Keys only present in `after` (series born during the interval) keep
/// their full value; keys only present in `before` are dropped — a
/// vanished series has no meaningful delta. Zero deltas are retained so
/// callers can distinguish "untouched" from "unknown".
pub fn snapshot_delta(
    before: &BTreeMap<String, f64>,
    after: &BTreeMap<String, f64>,
) -> BTreeMap<String, f64> {
    after
        .iter()
        .map(|(k, &v)| (k.clone(), v - before.get(k).copied().unwrap_or(0.0)))
        .collect()
}

fn render_text_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds().iter().enumerate() {
        cumulative += counts[i];
        let le = format!("le=\"{}\"", json_f64(*bound));
        let merged = if labels.is_empty() {
            le
        } else {
            format!("{labels},{le}")
        };
        let _ = writeln!(out, "{name}_bucket{{{merged}}} {cumulative}");
    }
    cumulative += counts[counts.len() - 1];
    let inf = if labels.is_empty() {
        "le=\"+Inf\"".to_string()
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    let _ = writeln!(out, "{name}_bucket{{{inf}}} {cumulative}");
    let _ = writeln!(out, "{name}_sum{} {}", braced(labels), json_f64(h.sum()));
    let _ = writeln!(out, "{name}_count{} {cumulative}", braced(labels));
}

/// Renders label pairs into the canonical `k="v"` comma-joined form.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.sort();
    parts.join(",")
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats an `f64` for JSON/exposition output: plain decimal notation,
/// never NaN/inf (non-finite values collapse to `0`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Quotes and escapes `s` as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_concurrent_increments_are_lossless() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(5);
        g.add(-8);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_concurrent_observations_are_lossless() {
        let h = Arc::new(Histogram::new(&[1.0, 2.0, 4.0]));
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        h.observe(f64::from((k + i) % 5));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 20_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 20_000);
        // Sum of 0+1+2+3+4 repeated 4000 times.
        assert!((h.sum() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn bucket_boundaries_are_upper_inclusive() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.0); // lands in the le=1 bucket (upper-inclusive)
        h.observe(1.5);
        h.observe(4.0);
        h.observe(9.0); // overflow
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn latency_buckets_are_log_spaced_goldens() {
        let b = latency_buckets();
        assert_eq!(b.len(), 28);
        assert_eq!(b[0], 1e-6);
        assert_eq!(b[1], 2e-6);
        assert_eq!(b[10], 1e-6 * 1024.0);
        assert!((b[27] - 134.217728).abs() < 1e-9);
        for w in b.windows(2) {
            assert_eq!(w[1], 2.0 * w[0]);
        }
    }

    #[test]
    fn quantiles_golden_values() {
        let h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // 90 obs ≤ 1, 5 in (1,2], 4 in (2,4], 1 beyond 8.
        for _ in 0..90 {
            h.observe(0.5);
        }
        for _ in 0..5 {
            h.observe(1.5);
        }
        for _ in 0..4 {
            h.observe(3.0);
        }
        h.observe(100.0);
        assert_eq!(h.quantile(0.50), 1.0);
        assert_eq!(h.quantile(0.90), 1.0);
        assert_eq!(h.quantile(0.95), 2.0);
        assert_eq!(h.quantile(0.99), 4.0);
        // The overflow observation saturates to the largest finite bound.
        assert_eq!(h.quantile(1.0), 8.0);
        // Empty histogram reports zero.
        assert_eq!(Histogram::new(&[1.0]).quantile(0.99), 0.0);
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let r = MetricsRegistry::new();
        let a = r.counter("pane_x_total", "x");
        let b = r.counter("pane_x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
        let labelled = r.counter_with("pane_x_total", "x", &[("shard", "0")]);
        labelled.add(7);
        assert_eq!(a.get(), 1, "labelled series is distinct");
        let result = std::panic::catch_unwind(|| r.gauge("pane_x_total", "x"));
        assert!(result.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn text_exposition_golden() {
        let r = MetricsRegistry::new();
        r.counter("pane_requests_total", "Requests.").add(3);
        r.counter_with("pane_requests_total", "Requests.", &[("op", "stats")])
            .add(2);
        r.gauge("pane_up", "Liveness.").set(1);
        let h = r.histogram("pane_lat_seconds", "Latency.", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(5.0);
        let expected = "\
# HELP pane_lat_seconds Latency.
# TYPE pane_lat_seconds histogram
pane_lat_seconds_bucket{le=\"0.001\"} 2
pane_lat_seconds_bucket{le=\"0.01\"} 3
pane_lat_seconds_bucket{le=\"+Inf\"} 4
pane_lat_seconds_sum 5.006
pane_lat_seconds_count 4
# HELP pane_requests_total Requests.
# TYPE pane_requests_total counter
pane_requests_total 3
pane_requests_total{op=\"stats\"} 2
# HELP pane_up Liveness.
# TYPE pane_up gauge
pane_up 1
";
        assert_eq!(r.render_text(), expected);
    }

    #[test]
    fn json_exposition_golden() {
        let r = MetricsRegistry::new();
        r.counter_with("pane_c", "c", &[("shard", "1")]).add(4);
        r.gauge("pane_g", "g").set(-2);
        let h = r.histogram("pane_h", "h", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let expected = concat!(
            "{\"counters\":{\"pane_c{shard=\\\"1\\\"}\":4},",
            "\"gauges\":{\"pane_g\":-2},",
            "\"histograms\":{\"pane_h\":{\"count\":2,\"sum\":2,\"p50\":1,\"p95\":2,\"p99\":2}}}",
        );
        assert_eq!(r.render_json(), expected);
    }

    #[test]
    fn snapshot_flattens_all_kinds_and_delta_isolates_an_interval() {
        let r = MetricsRegistry::new();
        let c = r.counter_with("pane_c", "c", &[("shard", "1")]);
        let g = r.gauge("pane_g", "g");
        let h = r.histogram("pane_h", "h", &[1.0, 2.0]);
        c.add(4);
        g.set(-2);
        h.observe(0.5);

        let before = r.snapshot();
        assert_eq!(before.get("pane_c{shard=\"1\"}"), Some(&4.0));
        assert_eq!(before.get("pane_g"), Some(&-2.0));
        assert_eq!(before.get("pane_h_count"), Some(&1.0));
        assert_eq!(before.get("pane_h_sum"), Some(&0.5));

        // The workload: 3 more requests, a gauge swing, 2 observations,
        // and a series born mid-interval.
        c.add(3);
        g.set(5);
        h.observe(1.5);
        h.observe(2.0);
        r.counter("pane_new_total", "born late").add(9);

        let delta = snapshot_delta(&before, &r.snapshot());
        assert_eq!(delta.get("pane_c{shard=\"1\"}"), Some(&3.0));
        assert_eq!(delta.get("pane_g"), Some(&7.0));
        assert_eq!(delta.get("pane_h_count"), Some(&2.0));
        assert_eq!(delta.get("pane_h_sum"), Some(&3.5));
        // A series born during the interval keeps its full value.
        assert_eq!(delta.get("pane_new_total"), Some(&9.0));
        // Untouched series report an explicit zero, not absence.
        let idle = snapshot_delta(&before, &before);
        assert_eq!(idle.get("pane_g"), Some(&0.0));
    }

    #[test]
    fn histogram_sum_survives_text_render_while_observing() {
        // Smoke: render under concurrent observation must not panic or
        // produce inconsistent bucket counts beyond the live total.
        let r = Arc::new(MetricsRegistry::new());
        let h = r.histogram("pane_h", "h", &latency_buckets());
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..2_000 {
                    h.observe(1e-6 * f64::from(i));
                }
            })
        };
        for _ in 0..20 {
            let _ = r.render_text();
        }
        writer.join().unwrap();
        assert_eq!(h.count(), 2_000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn quantile_is_monotone_in_q(values in proptest::collection::vec(0.0f64..1000.0, 1..200)) {
            let h = Histogram::new(&latency_buckets());
            for v in &values {
                h.observe(*v * 1e-3);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let mut last = f64::NEG_INFINITY;
            for q in qs {
                let v = h.quantile(q);
                prop_assert!(v >= last, "quantile({q}) = {v} < {last}");
                last = v;
            }
        }

        #[test]
        fn quantile_upper_bounds_true_percentile(values in proptest::collection::vec(1e-6f64..10.0, 1..100)) {
            // For in-range observations the reported quantile is an upper
            // bound on the true order statistic.
            let h = Histogram::new(&latency_buckets());
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            for v in &values {
                h.observe(*v);
            }
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                prop_assert!(h.quantile(q) >= truth);
            }
        }
    }
}
