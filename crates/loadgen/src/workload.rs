//! Deterministic request-stream synthesis.
//!
//! One seeded [`StdRng`] drives every draw — op choice, batch size,
//! node ids, insert vectors — in a fixed order, so identical seed +
//! config produce an identical byte-for-byte request sequence. The
//! stream is synthesized **before** the run starts; generation cost
//! never leaks into measured latency.

use crate::config::{Skew, WorkloadConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The protocol op a generated request performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A batched `similar-nodes` query.
    SimilarNodes,
    /// A batched `recommend-links` query.
    RecommendLinks,
    /// A single-row `insert`.
    Insert,
}

impl OpKind {
    /// The wire-protocol op string this kind produces (and the server
    /// echoes back on success).
    pub fn wire_name(self) -> &'static str {
        match self {
            OpKind::SimilarNodes => "similar-nodes",
            OpKind::RecommendLinks => "recommend-links",
            OpKind::Insert => "insert",
        }
    }
}

/// One pre-rendered request: the op kind (for per-op accounting and
/// desync detection) plus the exact JSON line to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Which protocol op the line performs.
    pub op: OpKind,
    /// The request line, without the trailing newline.
    pub line: String,
}

/// Seeded node-id sampler implementing the configured key skew.
///
/// The Zipfian variant precomputes the full CDF (probability of rank
/// `r` ∝ 1/(r+1)^θ) and samples by binary search — exact and
/// deterministic, at O(n) memory. At load-generator scale (node counts
/// up to a few million) the table costs a few MiB once per run, which
/// beats the rejection-inversion samplers' approximation subtleties.
#[derive(Debug, Clone)]
pub struct NodeSampler {
    n: usize,
    /// Cumulative unnormalized mass per rank; `None` for uniform.
    cdf: Option<Vec<f64>>,
}

impl NodeSampler {
    /// A sampler over node ids `0..n` with the given skew.
    /// Panics if `n == 0` — an empty key space cannot be sampled.
    pub fn new(skew: &Skew, n: usize) -> Self {
        assert!(n > 0, "cannot sample node ids from an empty deployment");
        let cdf = match skew {
            Skew::Uniform => None,
            Skew::Zipf(theta) => {
                let mut acc = 0.0;
                Some(
                    (0..n)
                        .map(|r| {
                            acc += 1.0 / ((r + 1) as f64).powf(*theta);
                            acc
                        })
                        .collect(),
                )
            }
        };
        Self { n, cdf }
    }

    /// Draws one node id.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match &self.cdf {
            None => rng.gen_range(0..self.n),
            Some(cdf) => {
                let total = *cdf.last().expect("n > 0");
                let u = rng.gen::<f64>() * total;
                // First rank whose cumulative mass reaches u.
                cdf.partition_point(|&c| c < u).min(self.n - 1)
            }
        }
    }
}

/// Synthesizes `count` requests against a deployment of `nodes` nodes
/// with `half_dim`-wide embedding halves.
///
/// Query batches sample existing ids only (`0..nodes`); inserts append
/// rows whose ids the deployment assigns, so the stream stays valid
/// regardless of how many inserts have landed. The mix draw uses the
/// integer percentage bands directly (`0..100`), so a `q90/i10` mix is
/// exactly 90%/10% in expectation and reproducible in realization.
pub fn generate_requests(
    cfg: &WorkloadConfig,
    nodes: usize,
    half_dim: usize,
    count: usize,
) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = NodeSampler::new(&cfg.skew, nodes);
    (0..count)
        .map(|_| {
            let band = rng.gen_range(0u32..100);
            let op = if band < cfg.mix.similar {
                OpKind::SimilarNodes
            } else if band < cfg.mix.similar + cfg.mix.links {
                OpKind::RecommendLinks
            } else {
                OpKind::Insert
            };
            let line = match op {
                OpKind::Insert => {
                    let half = |rng: &mut StdRng| {
                        let vals: Vec<String> = (0..half_dim)
                            .map(|_| format!("{}", rng.gen_range(-1.0..1.0)))
                            .collect();
                        vals.join(",")
                    };
                    let fwd = half(&mut rng);
                    let bwd = half(&mut rng);
                    format!(r#"{{"op":"insert","forward":[{fwd}],"backward":[{bwd}]}}"#)
                }
                query => {
                    let batch = rng.gen_range(cfg.batch.min..=cfg.batch.max);
                    let ids: Vec<String> = (0..batch)
                        .map(|_| sampler.sample(&mut rng).to_string())
                        .collect();
                    format!(
                        r#"{{"op":"{}","nodes":[{}],"k":{}}}"#,
                        query.wire_name(),
                        ids.join(","),
                        cfg.k
                    )
                }
            };
            Request { op, line }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchSpec, Mix};

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            mix: Mix {
                similar: 60,
                links: 30,
                insert: 10,
            },
            skew: Skew::Zipf(1.1),
            batch: BatchSpec { min: 1, max: 8 },
            k: 5,
            seed: 99,
        }
    }

    /// The acceptance-criteria pin: identical seed + config ⇒ identical
    /// request sequence, byte for byte.
    #[test]
    fn identical_seed_and_config_give_identical_request_streams() {
        let a = generate_requests(&cfg(), 500, 16, 400);
        let b = generate_requests(&cfg(), 500, 16, 400);
        assert_eq!(a, b);
        let different_seed = WorkloadConfig { seed: 100, ..cfg() };
        assert_ne!(a, generate_requests(&different_seed, 500, 16, 400));
    }

    #[test]
    fn mix_percentages_are_respected_in_realization() {
        let reqs = generate_requests(&cfg(), 500, 16, 4000);
        let count = |op| reqs.iter().filter(|r| r.op == op).count();
        let sim = count(OpKind::SimilarNodes) as f64 / 4000.0;
        let links = count(OpKind::RecommendLinks) as f64 / 4000.0;
        let ins = count(OpKind::Insert) as f64 / 4000.0;
        assert!((sim - 0.60).abs() < 0.05, "similar fraction {sim}");
        assert!((links - 0.30).abs() < 0.05, "links fraction {links}");
        assert!((ins - 0.10).abs() < 0.05, "insert fraction {ins}");
    }

    #[test]
    fn every_generated_line_parses_and_stays_in_bounds() {
        let reqs = generate_requests(&cfg(), 200, 8, 500);
        for r in &reqs {
            let v = pane_serve::parse(&r.line).expect("generated line must parse");
            assert_eq!(v.get("op").unwrap().as_str(), Some(r.op.wire_name()));
            match r.op {
                OpKind::Insert => {
                    assert_eq!(v.get("forward").unwrap().as_f64_array().unwrap().len(), 8);
                    assert_eq!(v.get("backward").unwrap().as_f64_array().unwrap().len(), 8);
                }
                _ => {
                    let ids = v.get("nodes").unwrap().as_index_array().unwrap();
                    assert!(!ids.is_empty() && ids.len() <= 8);
                    assert!(ids.iter().all(|&id| id < 200), "id out of range: {ids:?}");
                    assert_eq!(v.get("k").unwrap().as_index(), Some(5));
                }
            }
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks_and_uniform_does_not() {
        let mut rng = StdRng::seed_from_u64(7);
        let zipf = NodeSampler::new(&Skew::Zipf(1.1), 1000);
        let hot = (0..5000).filter(|_| zipf.sample(&mut rng) < 10).count();
        assert!(
            hot > 1000,
            "zipf(1.1) should put >20% of draws on the 10 hottest of 1000 keys, got {hot}/5000"
        );
        let mut rng = StdRng::seed_from_u64(7);
        let uniform = NodeSampler::new(&Skew::Uniform, 1000);
        let hot = (0..5000).filter(|_| uniform.sample(&mut rng) < 10).count();
        assert!(
            hot < 150,
            "uniform draws should not concentrate: {hot}/5000"
        );
    }

    #[test]
    fn zipf_sampler_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = NodeSampler::new(&Skew::Zipf(0.5), 8);
        let mut seen = [false; 8];
        for _ in 0..2000 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b), "some ids never drawn: {seen:?}");
    }
}
