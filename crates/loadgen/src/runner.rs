//! The open-loop runner and the saturation-knee search.
//!
//! **Open-loop** means arrivals are driven by a schedule, not by
//! completions: request `i` of a run at rate `qps` is due at
//! `start + i/qps`, and its latency is measured from that *scheduled*
//! instant. If the server falls behind, requests queue behind the
//! schedule and the queueing delay lands in the measured latency —
//! exactly the delay a closed-loop harness (next request only after the
//! previous response) silently hides (coordinated omission).

use crate::endpoint::Endpoint;
use crate::workload::{OpKind, Request};
use pane_obs::{latency_buckets, Histogram};
use pane_serve::{parse, Json};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to drive one run: the offered rate and the connection fan-out.
#[derive(Debug, Clone, Copy)]
pub struct RunPlan {
    /// Offered arrival rate, requests per second across all connections.
    pub qps: f64,
    /// Concurrent connections; request `i` is handled by connection
    /// `i % connections`, so the schedule interleaves evenly.
    pub connections: usize,
}

/// What happened to one scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Index in the generated request stream.
    pub index: usize,
    /// The op that was sent.
    pub op: OpKind,
    /// Whether the response parsed and carried `"ok":true`.
    pub ok: bool,
    /// Whether the response carried `"degraded":true` (router only).
    pub degraded: bool,
    /// The `op` echoed by the response, when present — comparing it to
    /// [`RequestOutcome::op`] detects protocol desync (an answer
    /// belonging to a different request).
    pub resp_op: Option<String>,
    /// Transport or protocol error, if the request did not complete.
    pub error: Option<String>,
    /// Completion time minus **scheduled** arrival time.
    pub latency: Duration,
}

/// Aggregate result of one open-loop run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The configured arrival rate.
    pub offered_qps: f64,
    /// Successful responses per second of wall clock — the number the
    /// knee search compares against `offered_qps`.
    pub achieved_qps: f64,
    /// Requests sent (always the full stream; open-loop never sheds).
    pub sent: usize,
    /// Responses with `"ok":true`.
    pub ok: usize,
    /// Requests that failed in transport or returned an error/non-response.
    pub errors: usize,
    /// Ok responses that were `"degraded":true`.
    pub degraded: usize,
    /// Client-side p50 latency in seconds (exact-from-bucket).
    pub p50_s: f64,
    /// Client-side p95 latency in seconds.
    pub p95_s: f64,
    /// Client-side p99 latency in seconds.
    pub p99_s: f64,
    /// Wall-clock span from the first scheduled arrival to the last
    /// completion.
    pub wall: Duration,
    /// Per-request outcomes, ordered by stream index.
    pub outcomes: Vec<RequestOutcome>,
}

/// Executes `requests` open-loop per `plan`. `connect` builds one
/// endpoint per connection — and a replacement when a connection dies
/// mid-run (the failed request is recorded, the stream continues).
///
/// Individual request failures never abort the run; only an impossible
/// plan (zero rate or connections) is an `Err`.
pub fn run(
    plan: &RunPlan,
    requests: &[Request],
    connect: &(dyn Fn() -> Result<Box<dyn Endpoint>, String> + Sync),
) -> Result<RunReport, String> {
    // `partial_cmp`: NaN must be rejected along with zero and negatives.
    if plan.qps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || plan.connections == 0 {
        return Err(format!(
            "run plan needs qps > 0 and connections > 0, got {plan:?}"
        ));
    }
    let conns = plan.connections.min(requests.len().max(1));
    let hist = Arc::new(Histogram::new(&latency_buckets()));
    // A small lead so every worker is spawned and parked before the
    // first request is due — the schedule starts clean.
    let start = Instant::now() + Duration::from_millis(5);

    let mut all: Vec<RequestOutcome> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..conns)
            .map(|w| {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    let mut endpoint: Option<Box<dyn Endpoint>> = None;
                    let mut outcomes = Vec::new();
                    for (index, request) in requests.iter().enumerate().skip(w).step_by(conns) {
                        let due = start + Duration::from_secs_f64(index as f64 / plan.qps);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        if endpoint.is_none() {
                            endpoint = match connect() {
                                Ok(e) => Some(e),
                                Err(e) => {
                                    outcomes.push(failed(index, request.op, e, due.elapsed()));
                                    continue;
                                }
                            };
                        }
                        let result = endpoint
                            .as_mut()
                            .expect("endpoint connected above")
                            .roundtrip(&request.line);
                        let latency = due.elapsed();
                        match result {
                            Ok(resp) => {
                                let outcome = judge(index, request.op, &resp, latency);
                                if outcome.ok {
                                    hist.observe(latency.as_secs_f64());
                                }
                                outcomes.push(outcome);
                            }
                            Err(e) => {
                                // The connection is suspect either way;
                                // the next request reconnects.
                                endpoint = None;
                                outcomes.push(failed(index, request.op, e, latency));
                            }
                        }
                    }
                    outcomes
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    all.sort_by_key(|o| o.index);
    let wall = start.elapsed().max(Duration::from_micros(1));

    let ok = all.iter().filter(|o| o.ok).count();
    Ok(RunReport {
        offered_qps: plan.qps,
        achieved_qps: ok as f64 / wall.as_secs_f64(),
        sent: all.len(),
        ok,
        errors: all.iter().filter(|o| !o.ok).count(),
        degraded: all.iter().filter(|o| o.degraded).count(),
        p50_s: hist.quantile(0.50),
        p95_s: hist.quantile(0.95),
        p99_s: hist.quantile(0.99),
        wall,
        outcomes: all,
    })
}

fn failed(index: usize, op: OpKind, error: String, latency: Duration) -> RequestOutcome {
    RequestOutcome {
        index,
        op,
        ok: false,
        degraded: false,
        resp_op: None,
        error: Some(error),
        latency,
    }
}

/// Classifies one response line against the request that produced it.
fn judge(index: usize, op: OpKind, resp: &str, latency: Duration) -> RequestOutcome {
    let parsed = match parse(resp) {
        Ok(v) => v,
        Err(e) => {
            return failed(index, op, format!("unparseable response: {e}"), latency);
        }
    };
    let ok = parsed.get("ok") == Some(&Json::Bool(true));
    let error = if ok {
        None
    } else {
        Some(
            parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("response without ok:true or an error field")
                .to_string(),
        )
    };
    RequestOutcome {
        index,
        op,
        ok,
        degraded: parsed.get("degraded") == Some(&Json::Bool(true)),
        resp_op: parsed.get("op").and_then(Json::as_str).map(str::to_string),
        error,
        latency,
    }
}

/// One step of the saturation search.
#[derive(Debug, Clone, Copy)]
pub struct KneePoint {
    /// The rate this step offered.
    pub offered_qps: f64,
    /// The rate the deployment delivered.
    pub achieved_qps: f64,
    /// Client-side p50 at this step, seconds.
    pub p50_s: f64,
    /// Client-side p99 at this step, seconds.
    pub p99_s: f64,
    /// Successful responses at this step.
    pub ok: usize,
}

/// Result of [`find_knee`]: the stepped trajectory and where it bent.
#[derive(Debug, Clone)]
pub struct KneeReport {
    /// Every step taken, in offered-rate order.
    pub steps: Vec<KneePoint>,
    /// Offered rate of the last step that still tracked offered load
    /// (0 if even the first step fell short).
    pub knee_qps: f64,
    /// Achieved rate at that knee step.
    pub knee_achieved_qps: f64,
    /// Whether a non-tracking step was actually observed. `false`
    /// means the search exhausted `max_steps` without saturating — the
    /// knee is a lower bound, not a measurement.
    pub saturated: bool,
}

/// Steps the offered rate geometrically (`start_qps`, ×`factor`, …, at
/// most `max_steps`) until achieved throughput stops tracking offered
/// load — `achieved/offered < tracking_threshold` — and reports the
/// last rate that tracked as the saturation knee.
///
/// `run_at` performs one run at the given rate; injecting it keeps the
/// search logic independent of transport, so tests pin the knee
/// arithmetic without a live server.
pub fn find_knee(
    start_qps: f64,
    factor: f64,
    max_steps: usize,
    tracking_threshold: f64,
    mut run_at: impl FnMut(f64) -> Result<RunReport, String>,
) -> Result<KneeReport, String> {
    // `partial_cmp`: NaN rates/factors must be rejected too.
    let gt = |a: f64, b: f64| a.partial_cmp(&b) == Some(std::cmp::Ordering::Greater);
    if !gt(start_qps, 0.0) || !gt(factor, 1.0) || max_steps == 0 {
        return Err(format!(
            "knee search needs start_qps > 0, factor > 1, max_steps > 0; \
             got {start_qps}, {factor}, {max_steps}"
        ));
    }
    let mut steps = Vec::new();
    let mut knee: Option<(f64, f64)> = None;
    let mut saturated = false;
    let mut qps = start_qps;
    for _ in 0..max_steps {
        let report = run_at(qps)?;
        steps.push(KneePoint {
            offered_qps: qps,
            achieved_qps: report.achieved_qps,
            p50_s: report.p50_s,
            p99_s: report.p99_s,
            ok: report.ok,
        });
        if report.achieved_qps / qps < tracking_threshold {
            saturated = true;
            break;
        }
        knee = Some((qps, report.achieved_qps));
        qps *= factor;
    }
    let (knee_qps, knee_achieved_qps) = knee.unwrap_or((0.0, 0.0));
    Ok(KneeReport {
        steps,
        knee_qps,
        knee_achieved_qps,
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::endpoint::HandlerEndpoint;
    use crate::workload::generate_requests;
    use pane_serve::LineHandler;

    /// A handler that answers instantly, echoing the request op; every
    /// `fail_every`-th request (1-based) gets a remote error instead.
    struct Echo {
        fail_every: usize,
        seen: std::sync::atomic::AtomicUsize,
    }

    impl LineHandler for Echo {
        fn handle(&self, line: &str) -> (String, bool) {
            let n = self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            if self.fail_every != 0 && n.is_multiple_of(self.fail_every) {
                return (r#"{"ok":false,"error":"synthetic"}"#.into(), true);
            }
            let op = parse(line)
                .ok()
                .and_then(|v| v.get("op").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_default();
            (format!(r#"{{"ok":true,"op":"{op}","results":[]}}"#), true)
        }
    }

    fn run_against(fail_every: usize, count: usize, qps: f64) -> RunReport {
        let handler = Arc::new(Echo {
            fail_every,
            seen: std::sync::atomic::AtomicUsize::new(0),
        });
        let requests = generate_requests(&WorkloadConfig::default(), 100, 4, count);
        let connect = move || -> Result<Box<dyn Endpoint>, String> {
            Ok(Box::new(HandlerEndpoint::new(Arc::clone(&handler))))
        };
        run(
            &RunPlan {
                qps,
                connections: 3,
            },
            &requests,
            &connect,
        )
        .unwrap()
    }

    #[test]
    fn open_loop_run_completes_the_stream_and_accounts_every_request() {
        let report = run_against(0, 60, 2000.0);
        assert_eq!(report.sent, 60);
        assert_eq!(report.ok, 60);
        assert_eq!(report.errors, 0);
        assert!(report.achieved_qps > 0.0);
        // Outcomes come back in stream order with op echoes intact.
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.resp_op.as_deref(), Some(o.op.wire_name()));
        }
        // An instant server keeps pace: a 60-request run at 2000 qps
        // spans ~30ms of schedule.
        assert!(report.wall < Duration::from_secs(5));
    }

    #[test]
    fn remote_errors_are_recorded_not_fatal() {
        let report = run_against(5, 50, 5000.0);
        assert_eq!(report.sent, 50);
        assert_eq!(report.errors, 10);
        assert_eq!(report.ok, 40);
        let failed = report.outcomes.iter().find(|o| !o.ok).unwrap();
        assert_eq!(failed.error.as_deref(), Some("synthetic"));
    }

    #[test]
    fn zero_rate_plans_are_rejected() {
        assert!(run(
            &RunPlan {
                qps: 0.0,
                connections: 1
            },
            &[],
            &|| Err("never called".into()),
        )
        .is_err());
    }

    #[test]
    fn knee_search_stops_where_throughput_stops_tracking() {
        // A fake deployment that caps out at 100 qps.
        let fake = |qps: f64| -> Result<RunReport, String> {
            let achieved = qps.min(100.0);
            Ok(RunReport {
                offered_qps: qps,
                achieved_qps: achieved,
                sent: 0,
                ok: 0,
                errors: 0,
                degraded: 0,
                p50_s: 0.001,
                p95_s: 0.002,
                p99_s: 0.004,
                wall: Duration::from_secs(1),
                outcomes: Vec::new(),
            })
        };
        let report = find_knee(25.0, 2.0, 10, 0.9, fake).unwrap();
        // 25, 50, 100 track; 200 achieves 100 (ratio 0.5) and stops.
        assert!(report.saturated);
        assert_eq!(report.steps.len(), 4);
        assert_eq!(report.knee_qps, 100.0);
        assert_eq!(report.knee_achieved_qps, 100.0);

        // A deployment that never saturates within the step budget.
        let unbounded = |qps: f64| -> Result<RunReport, String> {
            let mut r = fake(qps)?;
            r.achieved_qps = qps;
            Ok(r)
        };
        let report = find_knee(25.0, 2.0, 3, 0.9, unbounded).unwrap();
        assert!(!report.saturated);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.knee_qps, 100.0, "last tracked step: 25*2^2");
    }

    /// Open-loop honesty: a server that stalls for 30ms per request at
    /// an offered interval of 5ms must show queueing delay growing with
    /// the schedule, measured from scheduled (not send) time.
    #[test]
    fn latency_is_measured_from_scheduled_arrival() {
        struct Slow;
        impl LineHandler for Slow {
            fn handle(&self, _line: &str) -> (String, bool) {
                std::thread::sleep(Duration::from_millis(30));
                (
                    r#"{"ok":true,"op":"similar-nodes","results":[]}"#.into(),
                    true,
                )
            }
        }
        let handler = Arc::new(Slow);
        let requests = generate_requests(&WorkloadConfig::default(), 100, 4, 8);
        let connect = move || -> Result<Box<dyn Endpoint>, String> {
            Ok(Box::new(HandlerEndpoint::new(Arc::clone(&handler))))
        };
        // One connection at 200 qps: request i is due at 5ms·i but each
        // takes 30ms, so request 7 completes ≥ (30·8 − 5·7)ms after its
        // scheduled arrival — far beyond its own 30ms service time.
        let report = run(
            &RunPlan {
                qps: 200.0,
                connections: 1,
            },
            &requests,
            &connect,
        )
        .unwrap();
        let last = report.outcomes.last().unwrap();
        assert!(
            last.latency > Duration::from_millis(150),
            "queueing delay missing from open-loop latency: {:?}",
            last.latency
        );
    }
}
