//! # pane-loadgen — open-loop load generation for the PANE serving tier
//!
//! Drives a live `pane serve` daemon or `pane route` deployment (or an
//! in-process [`pane_serve::LineHandler`]) with a deterministic,
//! configurable request stream, and measures what the deployment
//! actually delivers:
//!
//! * **Open-loop arrivals** — requests fire on a fixed schedule derived
//!   from the target QPS, *regardless of completions*. A slow server
//!   does not slow the generator down, so queueing delay shows up in
//!   the measured latency instead of being silently absorbed (the
//!   coordinated-omission trap of closed-loop harnesses). Latency is
//!   measured from the request's **scheduled** arrival, not from when
//!   the socket write happened.
//! * **Deterministic workloads** — the whole request sequence (workload
//!   mix, batch sizes, key skew, insert vectors) is synthesized up
//!   front from one seeded generator; identical seed + config produce
//!   an identical byte-for-byte request stream ([`generate_requests`]).
//! * **Saturation search** — [`find_knee`] steps the offered rate until
//!   achieved throughput stops tracking offered load, locating the
//!   capacity knee of a deployment.
//! * **Measurement reuse** — client-side latency lands in a
//!   [`pane_obs::Histogram`] (exact-from-bucket p50/p95/p99), and
//!   [`flatten_wire_metrics`] + [`pane_obs::snapshot_delta`] turn two
//!   scrapes of the daemon's `metrics` op into server-side deltas for
//!   free. Reports serialize through the `PANE_BENCH_JSON` contract
//!   ([`BenchReport`]) shared with the criterion benches.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod endpoint;
mod report;
mod runner;
mod workload;

pub use config::{BatchSpec, Mix, Skew, WorkloadConfig};
pub use endpoint::{
    flatten_wire_metrics, scrape_metrics, HandlerEndpoint, TargetInfo, TcpEndpoint,
};
pub use endpoint::{probe_target, Endpoint};
pub use report::BenchReport;
pub use runner::{find_knee, run, KneePoint, KneeReport, RequestOutcome, RunPlan, RunReport};
pub use workload::{generate_requests, NodeSampler, OpKind, Request};
