//! Workload configuration: mix, skew, and batch-size grammars.
//!
//! All three parse from the compact CLI syntax (`q90/i10`, `zipf:1.1`,
//! `1..16`) and render back through [`std::fmt::Display`], so a report
//! can echo exactly what was run.

/// Workload mix as integer percentages that must sum to 100.
///
/// Parsed from `/`-separated tokens: `q` (or `s`) for `similar-nodes`,
/// `l` for `recommend-links`, `i` for `insert` — e.g. `q90/i10` or
/// `q70/l20/i10`. Omitted ops default to 0%.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percentage of `similar-nodes` requests.
    pub similar: u32,
    /// Percentage of `recommend-links` requests.
    pub links: u32,
    /// Percentage of `insert` requests.
    pub insert: u32,
}

impl Mix {
    /// Parses the `q90/i10`-style grammar. Errors (rather than guessing)
    /// on unknown ops, duplicate ops, or percentages not summing to 100.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut mix = Mix {
            similar: 0,
            links: 0,
            insert: 0,
        };
        let mut seen = [false; 3];
        for token in s.split('/') {
            let (op, pct) = token.split_at(token.len().min(1));
            let pct: u32 = pct
                .parse()
                .map_err(|_| format!("bad mix token {token:?}: expected e.g. q90"))?;
            let slot = match op {
                "q" | "s" => {
                    mix.similar = pct;
                    0
                }
                "l" => {
                    mix.links = pct;
                    1
                }
                "i" => {
                    mix.insert = pct;
                    2
                }
                _ => return Err(format!("bad mix op {op:?}: expected q, s, l, or i")),
            };
            if seen[slot] {
                return Err(format!("duplicate mix op {op:?} in {s:?}"));
            }
            seen[slot] = true;
        }
        if mix.similar + mix.links + mix.insert != 100 {
            return Err(format!(
                "mix {s:?} sums to {}, must sum to 100",
                mix.similar + mix.links + mix.insert
            ));
        }
        Ok(mix)
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}/l{}/i{}", self.similar, self.links, self.insert)
    }
}

/// Key-skew distribution over node ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Every node equally likely.
    Uniform,
    /// Zipfian with the given exponent θ > 0: node rank `r` drawn with
    /// probability ∝ 1/(r+1)^θ. θ ≈ 1 models typical hot-key traffic.
    Zipf(f64),
}

impl Skew {
    /// Parses `uniform` or `zipf:THETA` (θ must be finite and > 0).
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "uniform" {
            return Ok(Skew::Uniform);
        }
        if let Some(theta) = s.strip_prefix("zipf:") {
            let theta: f64 = theta
                .parse()
                .map_err(|_| format!("bad zipf exponent in {s:?}"))?;
            if !theta.is_finite() || theta <= 0.0 {
                return Err(format!("zipf exponent must be finite and > 0, got {theta}"));
            }
            return Ok(Skew::Zipf(theta));
        }
        Err(format!(
            "bad skew {s:?}: expected 'uniform' or 'zipf:THETA'"
        ))
    }
}

impl std::fmt::Display for Skew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skew::Uniform => write!(f, "uniform"),
            Skew::Zipf(theta) => write!(f, "zipf:{theta}"),
        }
    }
}

/// Batch-size distribution: uniform over `min..=max` nodes per query.
/// A fixed size is `min == max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// Smallest batch (≥ 1).
    pub min: usize,
    /// Largest batch (≥ `min`).
    pub max: usize,
}

impl BatchSpec {
    /// Parses `N` (fixed) or `MIN..MAX` (inclusive uniform range).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (min, max) = match s.split_once("..") {
            Some((lo, hi)) => (
                lo.parse()
                    .map_err(|_| format!("bad batch range start in {s:?}"))?,
                hi.parse()
                    .map_err(|_| format!("bad batch range end in {s:?}"))?,
            ),
            None => {
                let n = s.parse().map_err(|_| format!("bad batch size {s:?}"))?;
                (n, n)
            }
        };
        if min == 0 || max < min {
            return Err(format!("batch range {s:?} must satisfy 1 <= min <= max"));
        }
        Ok(BatchSpec { min, max })
    }
}

impl std::fmt::Display for BatchSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.min == self.max {
            write!(f, "{}", self.min)
        } else {
            write!(f, "{}..{}", self.min, self.max)
        }
    }
}

/// Everything that determines the synthesized request stream. Two equal
/// configs with the same target shape produce identical streams.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Op mix percentages.
    pub mix: Mix,
    /// Node-id skew for query batches.
    pub skew: Skew,
    /// Batch-size distribution for query ops.
    pub batch: BatchSpec,
    /// Top-k requested by each query.
    pub k: usize,
    /// Seed for the single generator the whole stream is drawn from.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            mix: Mix {
                similar: 90,
                links: 0,
                insert: 10,
            },
            skew: Skew::Uniform,
            batch: BatchSpec { min: 4, max: 4 },
            k: 10,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_grammar_round_trips_and_rejects_garbage() {
        assert_eq!(
            Mix::parse("q90/i10").unwrap(),
            Mix {
                similar: 90,
                links: 0,
                insert: 10
            }
        );
        assert_eq!(
            Mix::parse("s50/l30/i20").unwrap(),
            Mix {
                similar: 50,
                links: 30,
                insert: 20
            }
        );
        assert_eq!(Mix::parse("q100").unwrap().to_string(), "q100/l0/i0");
        assert!(Mix::parse("q90/i5").is_err(), "must sum to 100");
        assert!(Mix::parse("x90/i10").is_err(), "unknown op");
        assert!(Mix::parse("q50/q50").is_err(), "duplicate op");
        assert!(Mix::parse("q/i100").is_err(), "missing percentage");
    }

    #[test]
    fn skew_grammar_round_trips_and_rejects_garbage() {
        assert_eq!(Skew::parse("uniform").unwrap(), Skew::Uniform);
        assert_eq!(Skew::parse("zipf:1.1").unwrap(), Skew::Zipf(1.1));
        assert_eq!(Skew::parse("zipf:0.75").unwrap().to_string(), "zipf:0.75");
        assert!(Skew::parse("zipf:0").is_err());
        assert!(Skew::parse("zipf:-1").is_err());
        assert!(Skew::parse("zipf:inf").is_err());
        assert!(Skew::parse("pareto").is_err());
    }

    #[test]
    fn batch_grammar_round_trips_and_rejects_garbage() {
        assert_eq!(BatchSpec::parse("8").unwrap(), BatchSpec { min: 8, max: 8 });
        assert_eq!(
            BatchSpec::parse("1..16").unwrap(),
            BatchSpec { min: 1, max: 16 }
        );
        assert_eq!(BatchSpec::parse("1..16").unwrap().to_string(), "1..16");
        assert_eq!(BatchSpec::parse("8").unwrap().to_string(), "8");
        assert!(BatchSpec::parse("0").is_err());
        assert!(BatchSpec::parse("9..2").is_err());
        assert!(BatchSpec::parse("a..b").is_err());
    }
}
