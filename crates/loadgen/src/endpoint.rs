//! Where generated requests go: a live TCP daemon or an in-process
//! [`LineHandler`], behind one [`Endpoint`] trait so the runner, the
//! e2e tests, and the CLI share the same machinery.

use pane_serve::{parse, Json, LineHandler};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// One connection's view of the target: send a request line, get the
/// response line back. Errors are strings — the runner records them per
/// request rather than aborting the run (a load generator must survive
/// the failures it is trying to measure).
pub trait Endpoint: Send {
    /// Sends `line` (newline appended) and reads one response line.
    fn roundtrip(&mut self, line: &str) -> Result<String, String>;
}

/// A TCP connection to a live `pane serve` or `pane route` daemon,
/// speaking the JSON-lines protocol with read/write timeouts so a hung
/// server shows up as a timed-out request, not a hung generator.
pub struct TcpEndpoint {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpEndpoint {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`); `timeout` bounds
    /// the connect and each subsequent read/write.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Self, String> {
        let mut last = format!("'{addr}' resolved to no addresses");
        for resolved in addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
        {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(timeout))
                        .map_err(|e| e.to_string())?;
                    stream
                        .set_write_timeout(Some(timeout))
                        .map_err(|e| e.to_string())?;
                    stream.set_nodelay(true).ok();
                    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                    return Ok(Self {
                        reader,
                        writer: stream,
                    });
                }
                Err(e) => last = format!("connect {addr}: {e}"),
            }
        }
        Err(last)
    }
}

impl Endpoint for TcpEndpoint {
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("write: {e}"))?;
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(0) => Err("connection closed before a response arrived".into()),
            Ok(_) => Ok(resp.trim_end().to_string()),
            Err(e) => Err(format!("read: {e}")),
        }
    }
}

/// An in-process endpoint over any [`LineHandler`] — the way the e2e
/// tests drive a [`pane_serve::ObservedHandler`] or a
/// [`pane_serve::Router`] without sockets in the measured path.
pub struct HandlerEndpoint<H: LineHandler> {
    handler: Arc<H>,
}

impl<H: LineHandler> HandlerEndpoint<H> {
    /// Wraps a shared handler; clones of the `Arc` are cheap, so one
    /// handler serves every connection.
    pub fn new(handler: Arc<H>) -> Self {
        Self { handler }
    }
}

impl<H: LineHandler + Send + Sync> Endpoint for HandlerEndpoint<H> {
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        let (resp, _keep_open) = self.handler.handle(line);
        Ok(resp)
    }
}

/// What a deployment looks like to the generator, scraped from `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetInfo {
    /// Node count — the query-id key space.
    pub nodes: usize,
    /// Embedding half-width — the insert vector length.
    pub half_dim: usize,
}

/// Scrapes `stats` from the endpoint and extracts the [`TargetInfo`]
/// the workload synthesizer needs. Works against both a single daemon
/// and a router (both report `nodes` and `half_dim`).
pub fn probe_target(endpoint: &mut dyn Endpoint) -> Result<TargetInfo, String> {
    let resp = endpoint.roundtrip(r#"{"op":"stats"}"#)?;
    let v = parse(&resp).map_err(|e| format!("stats response: {e}"))?;
    if v.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("stats request failed: {resp}"));
    }
    let field = |name: &str| {
        v.get(name)
            .and_then(Json::as_index)
            .ok_or_else(|| format!("stats response is missing {name:?}: {resp}"))
    };
    Ok(TargetInfo {
        nodes: field("nodes")?,
        half_dim: field("half_dim")?,
    })
}

/// Scrapes the `metrics` op and returns the parsed response.
pub fn scrape_metrics(endpoint: &mut dyn Endpoint) -> Result<Json, String> {
    let resp = endpoint.roundtrip(r#"{"op":"metrics"}"#)?;
    let v = parse(&resp).map_err(|e| format!("metrics response: {e}"))?;
    if v.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("metrics request failed: {resp}"));
    }
    Ok(v)
}

/// Flattens a `metrics` response into the same `key → value` map shape
/// as [`pane_obs::MetricsRegistry::snapshot`]: counters and gauges
/// under their series key, histograms as `key_count` / `key_sum`. Two
/// scrapes bracketing a run feed [`pane_obs::snapshot_delta`] to
/// isolate the server-side cost of that run.
pub fn flatten_wire_metrics(resp: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(metrics) = resp.get("metrics") else {
        return out;
    };
    for kind in ["counters", "gauges"] {
        if let Some(Json::Obj(entries)) = metrics.get(kind) {
            for (key, value) in entries {
                if let Some(v) = value.as_f64() {
                    out.insert(key.clone(), v);
                }
            }
        }
    }
    if let Some(Json::Obj(entries)) = metrics.get("histograms") {
        for (key, value) in entries {
            if let Some(c) = value.get("count").and_then(Json::as_f64) {
                out.insert(format!("{key}_count"), c);
            }
            if let Some(s) = value.get("sum").and_then(Json::as_f64) {
                out.insert(format!("{key}_sum"), s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_matches_the_registry_snapshot_shape() {
        // A wire metrics response as ObservedHandler builds it.
        let resp = parse(concat!(
            r#"{"ok":true,"op":"metrics","metrics":{"#,
            r#""counters":{"pane_requests_total{op=\"stats\"}":3},"#,
            r#""gauges":{"pane_up":1},"#,
            r#""histograms":{"pane_lat_seconds":{"count":4,"sum":0.5,"p50":0.1,"p95":0.2,"p99":0.2}}"#,
            r#"}}"#,
        ))
        .unwrap();
        let flat = flatten_wire_metrics(&resp);
        assert_eq!(flat.get(r#"pane_requests_total{op="stats"}"#), Some(&3.0));
        assert_eq!(flat.get("pane_up"), Some(&1.0));
        assert_eq!(flat.get("pane_lat_seconds_count"), Some(&4.0));
        assert_eq!(flat.get("pane_lat_seconds_sum"), Some(&0.5));
        assert_eq!(flat.len(), 4, "quantiles are not snapshot series");

        // The delta machinery composes directly.
        let delta = pane_obs::snapshot_delta(&flat, &flat);
        assert_eq!(delta.get("pane_lat_seconds_count"), Some(&0.0));
    }

    #[test]
    fn probe_target_reads_nodes_and_half_dim() {
        struct Canned;
        impl Endpoint for Canned {
            fn roundtrip(&mut self, _line: &str) -> Result<String, String> {
                Ok(r#"{"ok":true,"op":"stats","nodes":90,"half_dim":16}"#.into())
            }
        }
        let info = probe_target(&mut Canned).unwrap();
        assert_eq!(
            info,
            TargetInfo {
                nodes: 90,
                half_dim: 16
            }
        );
    }
}
