//! Machine-readable reports through the `PANE_BENCH_JSON` contract.
//!
//! The load generator is a standalone binary path (`pane bench serve`),
//! not a criterion bench, but it emits the **same** report shape as the
//! vendored criterion shim — `{"results":[{label, median_s, mad_s,
//! samples}], "notes":{…}}` — so CI's contract assertions and any
//! downstream tooling read both without caring which produced them.

use std::fmt::Display;
use std::fmt::Write as _;

/// Collects labeled results and free-form notes, then serializes them
/// in the `PANE_BENCH_JSON` report shape.
#[derive(Debug, Default, Clone)]
pub struct BenchReport {
    results: Vec<(String, f64, f64, usize)>,
    notes: Vec<(String, String)>,
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one result row. `median_s` carries the headline seconds
    /// value (for a load run: median/p50 latency), `mad_s` the spread,
    /// `samples` how many observations back it.
    pub fn result(&mut self, label: impl Into<String>, median_s: f64, mad_s: f64, samples: usize) {
        self.results.push((label.into(), median_s, mad_s, samples));
    }

    /// Records a context note; later notes with the same key override
    /// earlier ones (same semantics as the criterion shim's `note`).
    pub fn note(&mut self, key: impl Display, value: impl Display) {
        let key = key.to_string();
        self.notes.retain(|(k, _)| *k != key);
        self.notes.push((key, value.to_string()));
    }

    /// Renders the `{"results":[…],"notes":{…}}` JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"results\":[");
        for (i, (label, median, mad, samples)) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"median_s\":{},\"mad_s\":{},\"samples\":{}}}",
                escape(label),
                num(*median),
                num(*mad),
                samples
            );
        }
        out.push_str("],\"notes\":{");
        for (i, (k, v)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("}}");
        out
    }

    /// Writes the report (newline-terminated) to the path named by the
    /// `PANE_BENCH_JSON` environment variable, if set and non-empty.
    /// Returns the path written to, if any.
    pub fn write_env_report(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        match std::env::var("PANE_BENCH_JSON") {
            Ok(path) if !path.is_empty() => {
                let path = std::path::PathBuf::from(path);
                std::fs::write(&path, self.render_json() + "\n")?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_matches_the_bench_json_contract() {
        let mut r = BenchReport::new();
        r.result("serve_q90_i10", 0.00042, 0.0, 1200);
        r.note("offered_qps", 500);
        r.note("offered_qps", 750); // override wins
        r.note("mix", "q90/l0/i10");
        let json = r.render_json();
        // The exact substrings CI's contract check greps for.
        assert!(json.contains("\"results\":[{"), "{json}");
        assert!(json.contains("\"notes\":{"), "{json}");
        assert_eq!(
            json,
            concat!(
                "{\"results\":[{\"label\":\"serve_q90_i10\",",
                "\"median_s\":0.00042,\"mad_s\":0,\"samples\":1200}],",
                "\"notes\":{\"offered_qps\":\"750\",\"mix\":\"q90/l0/i10\"}}",
            )
        );
        // The shape stays inside the serve protocol's JSON subset.
        pane_serve::parse(&json).unwrap();
    }
}
