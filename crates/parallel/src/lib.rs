#![warn(missing_docs)]
//! Block-parallel execution substrate for the PANE reproduction.
//!
//! The parallel algorithms of the paper (PAPMI, SMGreedyInit, PSVDCCD;
//! Algorithms 5–8) all follow the same pattern: partition the node set `V`
//! and the attribute set `R` into `nb` equally sized blocks, then have `nb`
//! threads process one block each, occasionally synchronizing at a barrier
//! where a main thread concatenates per-block results.
//!
//! This crate provides exactly those primitives, built on
//! [`std::thread::scope`] so that borrowed data can be shared with the
//! workers without `'static` bounds:
//!
//! * [`partition::even_ranges`] — the paper's "partition V into nb subsets
//!   of equal size" (Algorithm 5, lines 1–2);
//! * [`run_on_blocks`] / [`map_blocks`] — fan a closure out over the blocks;
//! * [`for_each_row_block`] — mutate disjoint *row* blocks of a row-major
//!   matrix in parallel (used by the X-phase of PSVDCCD and by PAPMI's
//!   log-transform loop);
//! * [`columns::ColumnBlocksMut`] — hand out disjoint *column* block views of
//!   a row-major matrix (used by the Y-phase of PSVDCCD, which updates
//!   `S_f[:, R_h]` for disjoint attribute blocks `R_h`).

pub mod columns;
pub mod partition;

pub use columns::{ColumnBlockMut, ColumnBlocksMut};
pub use partition::{block_of, even_ranges, even_ranges_nonempty};

use std::ops::Range;

/// Runs `f(block_index, range)` for every partition block, using one scoped
/// thread per block when `ranges.len() > 1`.
///
/// The closure only borrows its environment immutably, making this suitable
/// for read-only fan-out such as computing per-block statistics. When a
/// single block is passed the call is executed inline (no thread spawn), so
/// `nb = 1` reproduces the single-threaded algorithms exactly — this is the
/// property behind Lemma 4.1's "same output" guarantee.
pub fn run_on_blocks<F>(ranges: &[Range<usize>], f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    if ranges.is_empty() {
        return;
    }
    if ranges.len() == 1 {
        f(0, ranges[0].clone());
        return;
    }
    std::thread::scope(|s| {
        for (i, r) in ranges.iter().enumerate() {
            let f = &f;
            let r = r.clone();
            s.spawn(move || f(i, r));
        }
    });
}

/// Runs `f(block_index, range)` on every block and collects the results in
/// block order.
///
/// This is the "map" side of the paper's split–merge pattern: e.g.
/// SMGreedyInit (Algorithm 7) computes one `RandSVD` per row block in
/// parallel and then concatenates the factor matrices on the main thread.
pub fn map_blocks<T, F>(ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if ranges.is_empty() {
        return Vec::new();
    }
    if ranges.len() == 1 {
        return vec![f(0, ranges[0].clone())];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let f = &f;
                let r = r.clone();
                s.spawn(move || f(i, r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pane-parallel: worker panicked"))
            .collect()
    })
}

/// Splits the row-major matrix `data` (`rows` × `cols`) into the given row
/// ranges and runs `f(block_index, range, block_rows)` on each block in
/// parallel, where `block_rows` is the mutable sub-slice holding exactly the
/// rows of `range`.
///
/// # Panics
///
/// Panics if the ranges are not sorted, contiguous from 0 and covering
/// `rows` exactly, or if `data.len() != rows * cols`.
pub fn for_each_row_block<F>(
    data: &mut [f64],
    rows: usize,
    cols: usize,
    ranges: &[Range<usize>],
    f: F,
) where
    F: Fn(usize, Range<usize>, &mut [f64]) + Sync,
{
    assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
    partition::assert_partition(ranges, rows);
    if ranges.len() == 1 {
        f(0, ranges[0].clone(), data);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = data;
        for (i, r) in ranges.iter().enumerate() {
            let take = (r.end - r.start) * cols;
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let r = r.clone();
            s.spawn(move || f(i, r, head));
        }
    });
}

/// Number of blocks to actually use for `n` items and a requested thread
/// count `nb`: at most one block per item, at least one block.
pub fn effective_blocks(n: usize, nb: usize) -> usize {
    nb.max(1).min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_on_blocks_visits_all() {
        let ranges = even_ranges(10, 3);
        let count = AtomicUsize::new(0);
        run_on_blocks(&ranges, |_, r| {
            count.fetch_add(r.end - r.start, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn map_blocks_preserves_order() {
        let ranges = even_ranges(9, 4);
        let got = map_blocks(&ranges, |i, r| (i, r.start, r.end));
        for (i, (bi, s, e)) in got.iter().enumerate() {
            assert_eq!(i, *bi);
            assert_eq!(ranges[i], *s..*e);
        }
    }

    #[test]
    fn row_blocks_mutate_disjointly() {
        let rows = 7;
        let cols = 3;
        let mut data = vec![0.0; rows * cols];
        let ranges = even_ranges(rows, 3);
        for_each_row_block(&mut data, rows, cols, &ranges, |bi, r, block| {
            assert_eq!(block.len(), (r.end - r.start) * cols);
            for v in block.iter_mut() {
                *v = bi as f64 + 1.0;
            }
        });
        for (row, chunk) in data.chunks(cols).enumerate() {
            let bi = block_of(&ranges, row).unwrap();
            for v in chunk {
                assert_eq!(*v, bi as f64 + 1.0);
            }
        }
    }

    #[test]
    fn single_block_runs_inline() {
        let ranges = even_ranges(5, 1);
        run_on_blocks(&ranges, |_, _| {});
        let got = map_blocks(&ranges, |_, r| r.len());
        assert_eq!(got, vec![5]);
    }

    #[test]
    fn effective_blocks_clamps() {
        assert_eq!(effective_blocks(3, 8), 3);
        assert_eq!(effective_blocks(100, 8), 8);
        assert_eq!(effective_blocks(0, 8), 1);
        assert_eq!(effective_blocks(10, 0), 1);
    }
}
