//! Equal-size partitioning of index sets.
//!
//! Algorithm 5 (parallel PANE) begins by partitioning the node set `V` and
//! the attribute set `R` "into nb subsets with equal size". We follow the
//! standard balanced split: the first `n % nb` blocks get one extra element,
//! so block sizes differ by at most one and concatenating the blocks in
//! order recovers `0..n` exactly.

use std::ops::Range;

/// Splits `0..n` into `nb` contiguous ranges whose sizes differ by at most 1.
///
/// When `nb > n`, the trailing ranges are empty (they are kept so that block
/// indices remain stable); use [`even_ranges_nonempty`] if empty blocks are
/// undesirable. `nb == 0` is treated as 1.
pub fn even_ranges(n: usize, nb: usize) -> Vec<Range<usize>> {
    let nb = nb.max(1);
    let base = n / nb;
    let extra = n % nb;
    let mut out = Vec::with_capacity(nb);
    let mut start = 0;
    for i in 0..nb {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Like [`even_ranges`], but drops empty trailing ranges, guaranteeing every
/// returned block is non-empty (unless `n == 0`, where it returns no blocks).
pub fn even_ranges_nonempty(n: usize, nb: usize) -> Vec<Range<usize>> {
    let mut r = even_ranges(n, nb);
    r.retain(|x| !x.is_empty());
    r
}

/// Index of the block containing `idx`, or `None` if out of range.
pub fn block_of(ranges: &[Range<usize>], idx: usize) -> Option<usize> {
    ranges.iter().position(|r| r.contains(&idx))
}

/// Asserts that `ranges` is a sorted, contiguous, exact partition of `0..n`.
pub fn assert_partition(ranges: &[Range<usize>], n: usize) {
    let mut expect = 0usize;
    for (i, r) in ranges.iter().enumerate() {
        assert_eq!(
            r.start, expect,
            "partition block {i} starts at {} but previous block ended at {expect}",
            r.start
        );
        assert!(r.start <= r.end, "partition block {i} is reversed");
        expect = r.end;
    }
    assert_eq!(expect, n, "partition covers 0..{expect}, expected 0..{n}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn covers_exactly() {
        for n in 0..40 {
            for nb in 1..10 {
                let r = even_ranges(n, nb);
                assert_eq!(r.len(), nb);
                assert_partition(&r, n);
                let min = r.iter().map(|x| x.len()).min().unwrap();
                let max = r.iter().map(|x| x.len()).max().unwrap();
                assert!(max - min <= 1, "unbalanced: n={n} nb={nb}");
            }
        }
    }

    #[test]
    fn nonempty_variant_drops_empties() {
        let r = even_ranges_nonempty(3, 8);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|x| !x.is_empty()));
        assert!(even_ranges_nonempty(0, 4).is_empty());
    }

    #[test]
    fn zero_blocks_treated_as_one() {
        let r = even_ranges(5, 0);
        assert_eq!(r, vec![0..5]);
    }

    #[test]
    fn block_lookup() {
        let r = even_ranges(10, 3); // [0..4, 4..7, 7..10]
        assert_eq!(block_of(&r, 0), Some(0));
        assert_eq!(block_of(&r, 3), Some(0));
        assert_eq!(block_of(&r, 4), Some(1));
        assert_eq!(block_of(&r, 9), Some(2));
        assert_eq!(block_of(&r, 10), None);
    }

    proptest! {
        #[test]
        fn prop_partition_exact(n in 0usize..500, nb in 1usize..33) {
            let r = even_ranges(n, nb);
            assert_partition(&r, n);
            // Every index belongs to exactly one block.
            for idx in 0..n {
                prop_assert!(block_of(&r, idx).is_some());
            }
        }
    }
}
