//! Disjoint **column-block** views of a row-major matrix.
//!
//! The Y-phase of PSVDCCD (Algorithm 8, lines 11–16) has `nb` threads update
//! `Y[R_h]`, `S_f[:, R_h]` and `S_b[:, R_h]` for *disjoint attribute blocks*
//! `R_h`. With a row-major `S_f`, each thread therefore writes a strided but
//! disjoint set of entries. Rust's slice API cannot express "disjoint column
//! stripes of one buffer", so this module provides a small checked wrapper:
//!
//! * [`ColumnBlocksMut::split`] verifies that the requested column ranges are
//!   pairwise disjoint and in-bounds, then hands out one [`ColumnBlockMut`]
//!   per range;
//! * each [`ColumnBlockMut`] only ever dereferences entries `(row, col)` with
//!   `col` inside its own range (checked by `debug_assert!` on every access
//!   and by construction of its accessors), so the aliasing contract holds.
//!
//! Safety argument: the raw pointer is shared, but the set of addresses
//! reachable from block `i` is `{ base + r*cols + c : c ∈ range_i }`, and the
//! ranges are verified disjoint, hence no two blocks can alias. The parent
//! borrow `&mut [f64]` is held by `ColumnBlocksMut` for the full lifetime of
//! the views, preventing any other access to the buffer.

use std::marker::PhantomData;
use std::ops::Range;

/// Owner of the mutable borrow; produces disjoint column-block views.
pub struct ColumnBlocksMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    _marker: PhantomData<&'a mut [f64]>,
}

// The owner itself is only used to create the views on the calling thread.
unsafe impl<'a> Send for ColumnBlocksMut<'a> {}

impl<'a> ColumnBlocksMut<'a> {
    /// Wraps a row-major `rows`×`cols` buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(data: &'a mut [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            _marker: PhantomData,
        }
    }

    /// Splits into one view per column range.
    ///
    /// # Panics
    /// Panics if the ranges overlap or exceed `cols`. Ranges need not cover
    /// all columns and may be given in any order, but must be disjoint.
    pub fn split(&mut self, ranges: &[Range<usize>]) -> Vec<ColumnBlockMut<'_>> {
        let mut sorted: Vec<Range<usize>> = ranges.to_vec();
        sorted.sort_by_key(|r| r.start);
        for w in sorted.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "column ranges overlap: {:?} and {:?}",
                w[0],
                w[1]
            );
        }
        if let Some(last) = sorted.last() {
            assert!(
                last.end <= self.cols,
                "column range {last:?} out of bounds (cols = {})",
                self.cols
            );
        }
        ranges
            .iter()
            .map(|r| ColumnBlockMut {
                ptr: self.ptr,
                rows: self.rows,
                cols: self.cols,
                range: r.clone(),
                _marker: PhantomData,
            })
            .collect()
    }
}

/// A mutable view restricted to columns `range` of a row-major matrix.
pub struct ColumnBlockMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    range: Range<usize>,
    _marker: PhantomData<&'a mut [f64]>,
}

// Safe to move to a worker thread: by construction the reachable address
// sets of distinct blocks are disjoint (see module docs).
unsafe impl<'a> Send for ColumnBlockMut<'a> {}

impl<'a> ColumnBlockMut<'a> {
    /// Column range this view may touch.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Number of rows of the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn check(&self, row: usize, col: usize) {
        debug_assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        debug_assert!(
            self.range.contains(&col),
            "column {col} outside this block's range {:?}",
            self.range
        );
    }

    /// Reads entry `(row, col)`; `col` must lie in this block's range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.check(row, col);
        unsafe { *self.ptr.add(row * self.cols + col) }
    }

    /// Writes entry `(row, col)`; `col` must lie in this block's range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f64) {
        self.check(row, col);
        unsafe { *self.ptr.add(row * self.cols + col) = v }
    }

    /// Adds `v` to entry `(row, col)`.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, v: f64) {
        self.check(row, col);
        unsafe { *self.ptr.add(row * self.cols + col) += v }
    }

    /// Copies column `col` (length `rows`) into `out`.
    pub fn gather_column(&self, col: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows);
        self.check(0, col);
        for (row, slot) in out.iter_mut().enumerate() {
            *slot = unsafe { *self.ptr.add(row * self.cols + col) };
        }
    }

    /// Writes `src` (length `rows`) into column `col`.
    pub fn scatter_column(&mut self, col: usize, src: &[f64]) {
        assert_eq!(src.len(), self.rows);
        self.check(0, col);
        for (row, &v) in src.iter().enumerate() {
            unsafe { *self.ptr.add(row * self.cols + col) = v };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::even_ranges;

    #[test]
    fn disjoint_column_writes() {
        let rows = 4;
        let cols = 6;
        let mut data = vec![0.0; rows * cols];
        let ranges = even_ranges(cols, 3);
        let mut owner = ColumnBlocksMut::new(&mut data, rows, cols);
        let blocks = owner.split(&ranges);
        std::thread::scope(|s| {
            for (bi, mut b) in blocks.into_iter().enumerate() {
                s.spawn(move || {
                    for c in b.range() {
                        for r in 0..b.rows() {
                            b.set(r, c, (bi * 100 + r * 10 + c) as f64);
                        }
                    }
                });
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                let bi = c / 2; // 6 cols, 3 blocks of 2
                assert_eq!(data[r * cols + c], (bi * 100 + r * 10 + c) as f64);
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let rows = 3;
        let cols = 4;
        let mut data: Vec<f64> = (0..rows * cols).map(|x| x as f64).collect();
        let mut owner = ColumnBlocksMut::new(&mut data, rows, cols);
        let mut blocks = owner.split(std::slice::from_ref(&(1..3)));
        let b = &mut blocks[0];
        let mut col = vec![0.0; rows];
        b.gather_column(2, &mut col);
        assert_eq!(col, vec![2.0, 6.0, 10.0]);
        col.iter_mut().for_each(|v| *v += 0.5);
        b.scatter_column(2, &col);
        // Views dropped here; the owner's borrow ends with the scope.
        drop(blocks);
        let _ = owner;
        assert_eq!(data[2], 2.5); // row 0, col 2
        assert_eq!(data[2 * cols + 2], 10.5);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_ranges_rejected() {
        let mut data = vec![0.0; 4];
        let mut owner = ColumnBlocksMut::new(&mut data, 2, 2);
        let _ = owner.split(&[0..1, 0..2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_range_rejected() {
        let mut data = vec![0.0; 4];
        let mut owner = ColumnBlocksMut::new(&mut data, 2, 2);
        let _ = owner.split(std::slice::from_ref(&(1..3)));
    }
}
