//! PANE-R — the paper's own ablation (§5.7, Figures 7–8): PANE with
//! **random initialization** in place of GreedyInit.
//!
//! Everything else is identical to PANE: the same APMI affinity matrices
//! and the same CCD sweeps; only Line 1 of Algorithm 4 changes. The
//! experiments plot running time vs AUC at sweep counts
//! `t ∈ {1, 2, 5, 10, 20}` for both, showing GreedyInit converging much
//! faster at equal time.

use pane_core::{
    ccd_sweeps, papmi, ApmiInputs, InitState, PaneConfig, PaneEmbedding, PaneError, PaneTimings,
};
use pane_graph::AttributedGraph;
use pane_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The PANE-R embedder: same config surface as PANE.
pub struct PaneR {
    config: PaneConfig,
}

impl PaneR {
    /// Creates the ablation embedder.
    pub fn new(config: PaneConfig) -> Self {
        config.validate().expect("invalid PaneConfig");
        Self { config }
    }

    /// Runs APMI + random init + CCD; returns the same embedding type PANE
    /// does, so all scorers apply unchanged.
    pub fn embed(&self, graph: &AttributedGraph) -> Result<PaneEmbedding, PaneError> {
        if graph.num_nodes() == 0 {
            return Err(PaneError::EmptyGraph);
        }
        if graph.num_attributes() == 0 || graph.num_attribute_entries() == 0 {
            return Err(PaneError::NoAttributes);
        }
        let cfg = &self.config;
        let nb = cfg.threads;
        let t = cfg.iterations();

        let t0 = Instant::now();
        let p = graph.random_walk_matrix(cfg.dangling);
        let pt = p.transpose();
        let rr = graph.attr_row_normalized();
        let rc = graph.attr_col_normalized();
        let aff = papmi(
            &ApmiInputs {
                p: &p,
                pt: &pt,
                rr: &rr,
                rc: &rc,
                alpha: cfg.alpha,
                t,
            },
            nb,
        );
        let affinity_secs = t0.elapsed().as_secs_f64();

        // Random init: Gaussian entries scaled so the initial products have
        // roughly the affinity matrices' magnitude (a fair, non-sabotaged
        // random start).
        let t1 = Instant::now();
        let n = graph.num_nodes();
        let d = graph.num_attributes();
        let k2 = cfg.half_dim();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBADC0FFE);
        let scale = (aff.forward.frob_norm_sq() / (n * d) as f64)
            .sqrt()
            .max(1e-12)
            / (k2 as f64).sqrt();
        let mut xf = DenseMatrix::gaussian(n, k2, &mut rng);
        let mut xb = DenseMatrix::gaussian(n, k2, &mut rng);
        let mut y = DenseMatrix::gaussian(d, k2, &mut rng);
        xf.scale_inplace(scale.sqrt());
        xb.scale_inplace(scale.sqrt());
        y.scale_inplace(scale.sqrt());
        let mut sf = xf.matmul_transb_par(&y, nb);
        sf.axpy_inplace(-1.0, &aff.forward);
        let mut sb = xb.matmul_transb_par(&y, nb);
        sb.axpy_inplace(-1.0, &aff.backward);
        let mut state = InitState { xf, xb, y, sf, sb };
        let init_secs = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        ccd_sweeps(&mut state, cfg.sweeps(), nb);
        let ccd_secs = t2.elapsed().as_secs_f64();

        let objective = pane_core::objective(&state);
        Ok(PaneEmbedding {
            forward: state.xf,
            backward: state.xb,
            attribute: state.y,
            timings: PaneTimings {
                affinity_secs,
                init_secs,
                ccd_secs,
            },
            objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_core::Pane;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn graph() -> AttributedGraph {
        generate_sbm(&SbmConfig {
            nodes: 200,
            communities: 4,
            attributes: 20,
            attrs_per_node: 4.0,
            seed: 21,
            ..Default::default()
        })
    }

    fn cfg(sweeps: usize) -> PaneConfig {
        PaneConfig::builder()
            .dimension(16)
            .ccd_sweeps(sweeps)
            .seed(1)
            .build()
    }

    #[test]
    fn greedy_beats_random_at_equal_sweeps() {
        let g = graph();
        for sweeps in [1, 3] {
            let pane = Pane::new(cfg(sweeps)).embed(&g).unwrap();
            let pane_r = PaneR::new(cfg(sweeps)).embed(&g).unwrap();
            assert!(
                pane.objective < pane_r.objective,
                "sweeps={sweeps}: greedy {} should beat random {}",
                pane.objective,
                pane_r.objective
            );
        }
    }

    #[test]
    fn random_init_improves_with_sweeps() {
        let g = graph();
        let few = PaneR::new(cfg(1)).embed(&g).unwrap();
        let many = PaneR::new(cfg(12)).embed(&g).unwrap();
        assert!(
            many.objective < few.objective,
            "{} !< {}",
            many.objective,
            few.objective
        );
    }

    #[test]
    fn same_embedding_surface_as_pane() {
        let g = graph();
        let emb = PaneR::new(cfg(2)).embed(&g).unwrap();
        assert_eq!(emb.forward.shape(), (200, 8));
        assert!(emb.attribute_score(0, 0).is_finite());
        assert!(emb.link_score(0, 1).is_finite());
    }
}
