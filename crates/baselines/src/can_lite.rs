//! CAN-like undirected node–attribute co-embedding.
//!
//! CAN \[27\] co-embeds nodes and attributes of an **undirected** graph into
//! a shared space (via a variational GCN in the original). The stand-in
//! keeps exactly CAN's information content — joint node+attribute, single
//! vector per node, no edge direction — by running a one-directional
//! version of PANE's own machinery on the symmetrized graph:
//!
//! 1. symmetrize the graph;
//! 2. compute the single (forward-only) affinity `F_u = ln(n·P̂_u + 1)` with
//!    the APMI recurrence;
//! 3. factorize once: `X = U·Σ`, `Y = V`.
//!
//! Attribute inference scores `X[v]·Y[r]` (as CAN does); link prediction
//! uses the best-of-four single-embedding protocol.

use pane_core::{apmi, ApmiInputs};
use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::{rand_svd, DenseMatrix, RandSvdConfig};

/// Fitted CAN-like model.
pub struct CanLite {
    /// Node embeddings (`n × k/2`).
    pub x: DenseMatrix,
    /// Attribute embeddings (`d × k/2`).
    pub y: DenseMatrix,
}

impl CanLite {
    /// Fits with per-side dimension `dim/2` (the same budget split PANE
    /// uses, for a fair comparison at equal budget `dim`).
    pub fn fit(g: &AttributedGraph, dim: usize, alpha: f64, iters: usize, seed: u64) -> Self {
        assert!(
            dim >= 2 && dim.is_multiple_of(2),
            "dim must be even and >= 2"
        );
        let und = g.symmetrize();
        let p = und.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let rr = und.attr_row_normalized();
        let rc = und.attr_col_normalized();
        let aff = apmi(&ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t: iters,
        });
        let svd = rand_svd(&aff.forward, &RandSvdConfig::new(dim / 2, 3, seed));
        CanLite {
            x: svd.u_sigma(),
            y: svd.v,
        }
    }

    /// Node embedding matrix for the single-embedding link protocol.
    pub fn node_embedding(&self) -> &DenseMatrix {
        &self.x
    }
}

impl pane_eval::scoring::AttrScorer for CanLite {
    fn attr_score(&self, v: usize, r: usize) -> f64 {
        pane_linalg::vecops::dot(self.x.row(v), self.y.row(r))
    }
}

impl pane_eval::scoring::NodeFeatureSource for CanLite {
    fn node_features(&self, v: usize) -> Vec<f64> {
        let mut f = self.x.row(v).to_vec();
        pane_linalg::vecops::normalize(&mut f, 1e-300);
        f
    }

    fn feature_dim(&self) -> usize {
        self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_eval::split::split_attribute_entries;
    use pane_eval::tasks::attr_inference::evaluate_attr_scorer;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    #[test]
    fn attribute_inference_above_chance() {
        let g = generate_sbm(&SbmConfig {
            nodes: 250,
            communities: 4,
            attributes: 24,
            attrs_per_node: 5.0,
            attr_noise: 0.1,
            seed: 9,
            ..Default::default()
        });
        let split = split_attribute_entries(&g, 0.2, 1);
        let model = CanLite::fit(&split.residual, 32, 0.5, 5, 2);
        let r = evaluate_attr_scorer(&model, &split);
        assert!(r.auc > 0.7, "CAN-like AUC {}", r.auc);
    }

    #[test]
    fn shapes_are_consistent() {
        let g = generate_sbm(&SbmConfig {
            nodes: 80,
            attributes: 12,
            seed: 10,
            ..Default::default()
        });
        let m = CanLite::fit(&g, 16, 0.5, 4, 3);
        assert_eq!(m.x.shape(), (80, 8));
        assert_eq!(m.y.shape(), (12, 8));
    }
}
