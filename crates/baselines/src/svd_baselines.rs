//! Single-signal SVD baselines: topology-only, attribute-only, and the
//! binarized (BANE/LQANR-family) variant.

use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::{rand_svd, thin_qr, DenseMatrix, RandSvdConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Topology-only embedding (RandNE-style iterative random projection of the
/// random-walk operator on the symmetrized graph) — stands in for the
/// topology-dominant competitors (STNE, DGI).
pub struct TopoSvd {
    /// Node embeddings (`n × dim`).
    pub x: DenseMatrix,
}

impl TopoSvd {
    /// Fits by projecting `α Σ (1-α)^ℓ P_u^ℓ` onto a Gaussian sketch.
    pub fn fit(g: &AttributedGraph, dim: usize, alpha: f64, iters: usize, seed: u64) -> Self {
        let und = g.symmetrize();
        let p = und.random_walk_matrix(DanglingPolicy::SelfLoop);
        let mut rng = StdRng::seed_from_u64(seed);
        let omega = thin_qr(&DenseMatrix::gaussian(g.num_nodes(), dim, &mut rng)).q;
        let mut cur = omega.clone();
        let mut scratch = DenseMatrix::zeros(cur.rows(), cur.cols());
        for _ in 0..iters {
            p.mul_dense_into(&cur, &mut scratch);
            scratch.scale_inplace(1.0 - alpha);
            scratch.axpy_inplace(alpha, &omega);
            std::mem::swap(&mut cur, &mut scratch);
        }
        // Drop the ℓ = 0 identity term α·Ω: it projects to pure sketch
        // noise and would drown the neighborhood signal.
        cur.axpy_inplace(-alpha, &omega);
        TopoSvd { x: cur }
    }
}

/// Attribute-only embedding: truncated SVD of the raw attribute matrix —
/// isolates the attribute signal (the auto-encoder competitors' dominant
/// input, e.g. ARGA).
pub struct AttrSvd {
    /// Node embeddings (`n × dim`).
    pub x: DenseMatrix,
}

impl AttrSvd {
    /// Fits on `R` alone; the graph topology is ignored by design.
    pub fn fit(g: &AttributedGraph, dim: usize, seed: u64) -> Self {
        let r = g.attributes().to_dense();
        let dim = dim.min(r.cols().max(1));
        let svd = rand_svd(&r, &RandSvdConfig::new(dim, 3, seed));
        AttrSvd { x: svd.u_sigma() }
    }
}

/// Binarized joint embedding (BANE/LQANR family): sign-quantize a CAN-like
/// joint embedding; scoring uses Hamming distance, mirroring BANE's binary
/// codes (the paper notes BANE "reduces space overheads at the cost of
/// accuracy" — the quantization loss shows up in the benchmarks the same
/// way).
pub struct BaneLite {
    /// Sign-quantized node embeddings (`n × dim`, entries ±1).
    pub x: DenseMatrix,
}

impl BaneLite {
    /// Fits the underlying CAN-like model, then quantizes.
    pub fn fit(g: &AttributedGraph, dim: usize, alpha: f64, iters: usize, seed: u64) -> Self {
        let can = crate::can_lite::CanLite::fit(g, dim, alpha, iters, seed);
        let mut x = can.x;
        x.map_inplace(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        BaneLite { x }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_eval::split::{split_attribute_entries, split_edges};
    use pane_eval::tasks::link_pred::best_of_four;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn graph(seed: u64) -> AttributedGraph {
        generate_sbm(&SbmConfig {
            nodes: 250,
            communities: 4,
            avg_out_degree: 7.0,
            p_in: 0.9,
            attributes: 24,
            attrs_per_node: 5.0,
            attr_noise: 0.1,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn topo_svd_predicts_links() {
        let g = graph(1);
        let split = split_edges(&g, 0.3, 2);
        let m = TopoSvd::fit(&split.residual, 16, 0.5, 5, 3);
        let (best, _) = best_of_four(&m.x, &split, true, 0);
        assert!(best.auc > 0.65, "TopoSvd AUC {}", best.auc);
    }

    #[test]
    fn attr_svd_sees_attribute_homophily() {
        let g = graph(2);
        // Attribute SVD helps link prediction via attribute homophily even
        // though it never looks at an edge.
        let split = split_edges(&g, 0.3, 3);
        let m = AttrSvd::fit(&split.residual, 16, 4);
        let (best, _) = best_of_four(&m.x, &split, true, 0);
        assert!(best.auc > 0.55, "AttrSvd AUC {}", best.auc);
        // Both single-signal methods stay clearly above chance but leave
        // headroom for joint methods (checked end-to-end in the
        // integration suite, mirroring Table 5's shape).
        let topo = TopoSvd::fit(&split.residual, 16, 0.5, 5, 4);
        let (topo_best, _) = best_of_four(&topo.x, &split, true, 0);
        assert!(topo_best.auc > 0.6, "TopoSvd AUC {}", topo_best.auc);
    }

    #[test]
    fn bane_lite_is_binary_and_lossy() {
        let g = graph(3);
        let m = BaneLite::fit(&g, 16, 0.5, 4, 5);
        assert!(m.x.data().iter().all(|&v| v == 1.0 || v == -1.0));
        // Quantization must lose accuracy versus the full-precision model
        // on attribute-entry prediction via features — check link AUC order.
        let split = split_edges(&g, 0.3, 6);
        let full = crate::can_lite::CanLite::fit(&split.residual, 16, 0.5, 4, 5);
        let quant = BaneLite::fit(&split.residual, 16, 0.5, 4, 5);
        let (full_best, _) = best_of_four(full.node_embedding(), &split, true, 0);
        let (quant_best, _) = best_of_four(&quant.x, &split, true, 0);
        assert!(
            quant_best.auc <= full_best.auc + 0.02,
            "binarization should not beat full precision: {} vs {}",
            quant_best.auc,
            full_best.auc
        );
    }

    #[test]
    fn attr_svd_handles_tiny_attribute_space() {
        let g = generate_sbm(&SbmConfig {
            nodes: 50,
            attributes: 2,
            attrs_per_node: 1.0,
            seed: 7,
            ..Default::default()
        });
        let m = AttrSvd::fit(&g, 16, 0);
        assert_eq!(m.x.rows(), 50);
        assert!(m.x.cols() <= 2);
        let _ = split_attribute_entries(&g, 0.2, 0);
    }
}
