//! TADW-like inductive matrix factorization.
//!
//! TADW \[44\] (and the HSCA/AANE family) minimizes
//! `‖M − Wᵀ·H·T‖²` where `M` is a second-order node-proximity matrix and
//! `T` a reduced text/attribute feature matrix. We implement the same
//! objective with alternating least squares:
//!
//! * `M = (P + P·P)/2` over the **symmetrized** graph (this family ignores
//!   edge direction — the property the paper's evaluation exploits);
//! * `T = top-q left factors of R` (`n × q`);
//! * alternate `W ← argmin ‖M − W·Zᵀ‖` and `H ← argmin ‖M − W·(T·Hᵀ)ᵀ‖`
//!   with `Z = T·Hᵀ`, via SVD-based least squares.
//!
//! The node embedding is `[W ‖ T·Hᵀ]`, exactly TADW's concatenation.
//!
//! `M` is materialized densely (`n × n`), faithful to the original — this
//! is precisely the scalability wall §1 of the PANE paper describes, so the
//! constructor enforces a node cap rather than silently thrashing.

use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::{pinv, rand_svd, DenseMatrix, RandSvdConfig};

/// Maximum node count before the dense proximity matrix is refused.
pub const MAX_NODES: usize = 10_000;

/// Fitted TADW-like model.
pub struct TadwLite {
    /// Structure half `W` (`n × k/2`).
    pub w: DenseMatrix,
    /// Attribute half `T·Hᵀ` (`n × k/2`).
    pub th: DenseMatrix,
}

impl TadwLite {
    /// Fits with total budget `dim` (`k/2` per half), `q = dim` reduced
    /// attribute features and `iters` ALS rounds.
    ///
    /// # Panics
    /// Panics if the graph exceeds [`MAX_NODES`] (the method is quadratic).
    pub fn fit(g: &AttributedGraph, dim: usize, iters: usize, seed: u64) -> Self {
        assert!(
            dim >= 2 && dim.is_multiple_of(2),
            "dim must be even and >= 2"
        );
        assert!(
            g.num_nodes() <= MAX_NODES,
            "TADW-like baseline materializes an n×n matrix; {} nodes exceeds the {} cap",
            g.num_nodes(),
            MAX_NODES
        );
        let k2 = dim / 2;
        let und = g.symmetrize();
        let p = und.random_walk_matrix(DanglingPolicy::SelfLoop).to_dense();
        // M = (P + P²) / 2.
        let mut m = p.matmul(&p);
        m.axpy_inplace(1.0, &p);
        m.scale_inplace(0.5);

        // Reduced attribute features T (n × q).
        let q = dim.min(g.num_attributes());
        let r_dense = g.attributes().to_dense();
        let rsvd = rand_svd(&r_dense, &RandSvdConfig::new(q, 3, seed ^ 0x7AD3));
        let mut t = rsvd.u_sigma();
        t.normalize_rows();

        // ALS on ‖M − W·(T·Hᵀ)ᵀ‖. The dense products are ordered so that
        // M — sparse in content even though stored densely; the per-entry
        // zero-skip makes M·X cost O(nnz(M)·k) — is always the LEFT
        // operand, and the dense pseudo-inverses only multiply thin
        // matrices.
        let mut h = DenseMatrix::gaussian(k2, q, &mut rand_seed(seed));
        let mut w = DenseMatrix::zeros(g.num_nodes(), k2);
        let t_pinv_t = pinv(&t, 1e-10).transpose(); // n × q
        for _ in 0..iters.max(1) {
            let z = t.matmul_transb(&h); // n × k/2
                                         // W = argmin ‖M − W·Zᵀ‖ = M·(Zᵀ)⁺ = M·(Z⁺)ᵀ.
            w = m.matmul(&pinv(&z, 1e-10).transpose()); // (n×n)·(n×k/2)
                                                        // H = argmin ‖M − W·H·Tᵀ‖ = W⁺·M·(Tᵀ)⁺ = W⁺·(M·(T⁺)ᵀ).
            let mt = m.matmul(&t_pinv_t); // n × q, M on the left again
            h = pinv(&w, 1e-10).matmul(&mt); // (k/2×n)·(n×q)
        }
        let th = t.matmul_transb(&h);
        Self { w, th }
    }

    /// The concatenated node embedding (`n × k`).
    pub fn embedding(&self) -> DenseMatrix {
        DenseMatrix::hstack(&[self.w.clone(), self.th.clone()])
    }
}

fn rand_seed(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_eval::split::split_edges;
    use pane_eval::tasks::link_pred::best_of_four;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    #[test]
    fn link_prediction_above_chance() {
        let g = generate_sbm(&SbmConfig {
            nodes: 250,
            communities: 4,
            avg_out_degree: 7.0,
            p_in: 0.9,
            attributes: 30,
            attrs_per_node: 5.0,
            seed: 4,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 5);
        let model = TadwLite::fit(&split.residual, 16, 4, 6);
        let x = model.embedding();
        let (best, _) = best_of_four(&x, &split, true, 0);
        assert!(best.auc > 0.65, "TADW-like AUC {} too low", best.auc);
    }

    #[test]
    fn als_reduces_reconstruction_error() {
        let g = generate_sbm(&SbmConfig {
            nodes: 120,
            attributes: 20,
            seed: 5,
            ..Default::default()
        });
        let und = g.symmetrize();
        let p = und.random_walk_matrix(DanglingPolicy::SelfLoop).to_dense();
        let mut m = p.matmul(&p);
        m.axpy_inplace(1.0, &p);
        m.scale_inplace(0.5);
        let err = |model: &TadwLite| model.w.matmul_transb(&model.th).sub(&m).frob_norm();
        let short = TadwLite::fit(&g, 16, 1, 7);
        let long = TadwLite::fit(&g, 16, 5, 7);
        assert!(
            err(&long) <= err(&short) + 1e-9,
            "ALS diverged: {} -> {}",
            err(&short),
            err(&long)
        );
        // And it must beat the zero model.
        assert!(err(&long) < m.frob_norm());
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn node_cap_enforced() {
        let g = generate_sbm(&SbmConfig {
            nodes: MAX_NODES + 1,
            avg_out_degree: 1.0,
            seed: 6,
            ..Default::default()
        });
        let _ = TadwLite::fit(&g, 8, 1, 0);
    }
}
