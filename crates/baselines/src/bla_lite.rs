//! BLA-like bilateral attribute inference (non-embedding baseline).
//!
//! BLA \[45\] jointly infers user links and attributes by iterative bilateral
//! propagation; it is the paper's non-embedding comparator for Table 4. The
//! stand-in propagates attribute evidence over the symmetrized graph:
//!
//! ```text
//!   S⁽⁰⁾ = R_train (row-normalized);   S⁽ˡ⁾ = λ·P_u·S⁽ˡ⁻¹⁾ + (1−λ)·S⁽⁰⁾
//! ```
//!
//! and scores `(v, r)` by `S⁽ᵗ⁾[v, r]` — i.e. smoothed neighborhood
//! attribute frequency. Like BLA it uses no latent space and no edge
//! direction, which is why PANE outperforms it on directed attributed
//! graphs (the Table-4 shape).

use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::DenseMatrix;

/// Fitted BLA-like propagation model.
pub struct BlaLite {
    /// Propagated score matrix (`n × d`).
    pub scores: DenseMatrix,
}

impl BlaLite {
    /// Fits with damping `lambda ∈ (0,1)` and `iters` propagation rounds.
    pub fn fit(g: &AttributedGraph, lambda: f64, iters: usize) -> Self {
        assert!((0.0..1.0).contains(&lambda), "lambda must be in [0,1)");
        let und = g.symmetrize();
        let p = und.random_walk_matrix(DanglingPolicy::SelfLoop);
        let s0 = und.attr_row_normalized().to_dense();
        let mut cur = s0.clone();
        let mut scratch = DenseMatrix::zeros(s0.rows(), s0.cols());
        for _ in 0..iters {
            p.mul_dense_into(&cur, &mut scratch);
            scratch.scale_inplace(lambda);
            scratch.axpy_inplace(1.0 - lambda, &s0);
            std::mem::swap(&mut cur, &mut scratch);
        }
        BlaLite { scores: cur }
    }
}

impl pane_eval::scoring::AttrScorer for BlaLite {
    fn attr_score(&self, v: usize, r: usize) -> f64 {
        self.scores.get(v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_eval::split::split_attribute_entries;
    use pane_eval::tasks::attr_inference::evaluate_attr_scorer;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    #[test]
    fn infers_attributes_above_chance() {
        let g = generate_sbm(&SbmConfig {
            nodes: 300,
            communities: 4,
            attributes: 24,
            attrs_per_node: 5.0,
            attr_noise: 0.1,
            p_in: 0.9,
            seed: 11,
            ..Default::default()
        });
        let split = split_attribute_entries(&g, 0.2, 2);
        let model = BlaLite::fit(&split.residual, 0.7, 6);
        let r = evaluate_attr_scorer(&model, &split);
        assert!(r.auc > 0.7, "BLA-like AUC {}", r.auc);
    }

    #[test]
    fn propagation_spreads_mass_to_neighbors() {
        // Path v0 - v1; only v0 has the attribute. After propagation v1
        // must score above an unrelated node v2.
        let mut b = pane_graph::GraphBuilder::new(3, 1);
        b.add_edge(0, 1);
        let g = b.build();
        let mut bb = pane_graph::GraphBuilder::new(3, 1);
        bb.add_edge(0, 1);
        bb.add_attribute(0, 0, 1.0);
        let g2 = bb.build();
        let _ = g;
        let m = BlaLite::fit(&g2, 0.5, 3);
        assert!(m.scores.get(1, 0) > m.scores.get(2, 0));
        assert!(m.scores.get(0, 0) > m.scores.get(1, 0));
    }
}
