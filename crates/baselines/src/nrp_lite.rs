//! NRP-like homogeneous network embedding.
//!
//! NRP \[49\] (the paper's strongest non-attributed competitor, by the same
//! authors) factorizes the personalized-PageRank matrix into a forward and
//! a backward embedding per node, `Π ≈ X_f · X_bᵀ`, then reweights. We
//! reproduce the core without the reweighting step: sketch the PPR operator
//! with a Gaussian test matrix from both sides,
//!
//! ```text
//!   X_b = orth( Πᵀ Ω ),   X_f = Π X_b
//! ```
//!
//! where `Π·M` is evaluated by the same truncated-series recurrence APMI
//! uses (`Π = α Σ (1-α)^ℓ P^ℓ`), so no `n × n` matrix is ever formed. This
//! keeps NRP's two defining properties — pure topology, and asymmetric
//! (direction-aware) scores `p(i→j) = X_f[i]·X_b[j]` — which are what the
//! evaluation compares against.

use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::{thin_qr, DenseMatrix};
use pane_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fitted NRP-like model.
pub struct NrpLite {
    /// Forward embeddings (`n × k/2`).
    pub forward: DenseMatrix,
    /// Backward embeddings (`n × k/2`).
    pub backward: DenseMatrix,
}

impl NrpLite {
    /// Fits on the graph topology. `dim` is the total budget `k` (split
    /// into two `k/2` halves, like PANE's).
    pub fn fit(g: &AttributedGraph, dim: usize, alpha: f64, iters: usize, seed: u64) -> Self {
        assert!(
            dim >= 2 && dim.is_multiple_of(2),
            "dim must be even and >= 2"
        );
        let k2 = dim / 2;
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let mut rng = StdRng::seed_from_u64(seed);
        // Subspace iteration on Π so X_b converges to the top right-singular
        // space of the PPR operator; X_f = Π·X_b then makes
        // X_f·X_bᵀ the (near-)best rank-k/2 approximation of Π — the
        // essence of NRP's PPR factorization.
        let mut z = DenseMatrix::gaussian(g.num_nodes(), k2, &mut rng);
        for _ in 0..3 {
            let q = thin_qr(&ppr_apply(&p, &z, alpha, iters)).q;
            z = thin_qr(&ppr_apply(&pt, &q, alpha, iters)).q;
        }
        let xb = z;
        let xf = ppr_apply(&p, &xb, alpha, iters);
        Self {
            forward: xf,
            backward: xb,
        }
    }

    /// Directed link score `p(src → dst) = X_f[src] · X_b[dst]`.
    pub fn link_score(&self, src: usize, dst: usize) -> f64 {
        pane_linalg::vecops::dot(self.forward.row(src), self.backward.row(dst))
    }

    /// Classifier features: normalized `[X_f ‖ X_b]` (the paper's protocol
    /// for NRP in §5.4).
    pub fn features(&self, v: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.forward.cols() + self.backward.cols());
        for half in [self.forward.row(v), self.backward.row(v)] {
            let mut h = half.to_vec();
            pane_linalg::vecops::normalize(&mut h, 1e-300);
            out.extend(h);
        }
        out
    }
}

/// `(α Σ_{ℓ=0..t} (1-α)^ℓ M^ℓ) · X`, by the APMI recurrence.
fn ppr_apply(m: &CsrMatrix, x: &DenseMatrix, alpha: f64, t: usize) -> DenseMatrix {
    let mut cur = x.clone();
    let mut scratch = DenseMatrix::zeros(x.rows(), x.cols());
    for _ in 0..t {
        m.mul_dense_into(&cur, &mut scratch);
        scratch.scale_inplace(1.0 - alpha);
        scratch.axpy_inplace(alpha, x);
        std::mem::swap(&mut cur, &mut scratch);
    }
    cur
}

impl pane_eval::scoring::LinkScorer for NrpLite {
    fn link_score(&self, src: usize, dst: usize) -> f64 {
        NrpLite::link_score(self, src, dst)
    }
}

impl pane_eval::scoring::NodeFeatureSource for NrpLite {
    fn node_features(&self, v: usize) -> Vec<f64> {
        self.features(v)
    }

    fn feature_dim(&self) -> usize {
        self.forward.cols() + self.backward.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_eval::split::split_edges;
    use pane_eval::tasks::link_pred::evaluate_link_scorer;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    #[test]
    fn predicts_links_above_chance() {
        let g = generate_sbm(&SbmConfig {
            nodes: 300,
            communities: 4,
            avg_out_degree: 8.0,
            p_in: 0.9,
            attributes: 10,
            seed: 1,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 2);
        let model = NrpLite::fit(&split.residual, 32, 0.5, 6, 3);
        let r = evaluate_link_scorer(&model, &split, false);
        assert!(r.auc > 0.7, "NRP-like AUC {} too low", r.auc);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generate_sbm(&SbmConfig {
            nodes: 100,
            seed: 2,
            ..Default::default()
        });
        let m1 = NrpLite::fit(&g, 16, 0.5, 4, 7);
        let m2 = NrpLite::fit(&g, 16, 0.5, 4, 7);
        assert_eq!(m1.forward.data(), m2.forward.data());
    }

    #[test]
    fn scores_are_asymmetric_on_directed_graphs() {
        let g = generate_sbm(&SbmConfig {
            nodes: 150,
            avg_out_degree: 5.0,
            seed: 3,
            ..Default::default()
        });
        let m = NrpLite::fit(&g, 16, 0.5, 5, 1);
        let mut asym = 0usize;
        let mut checked = 0usize;
        for (i, j, _) in g.adjacency().iter().take(50) {
            if (m.link_score(i, j) - m.link_score(j, i)).abs() > 1e-9 {
                asym += 1;
            }
            checked += 1;
        }
        assert!(
            asym * 2 > checked,
            "scores look symmetric ({asym}/{checked})"
        );
    }
}
