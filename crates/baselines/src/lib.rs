#![warn(missing_docs)]
//! Competitor stand-ins for the PANE evaluation (§5 of the paper).
//!
//! The paper compares against ten systems. They are Python/GPU codebases
//! that cannot be vendored here, so each *family* of competitors is
//! represented by a from-scratch Rust method that uses exactly the
//! information that family uses (see DESIGN.md §4 for the substitution
//! argument):
//!
//! | paper competitor(s) | family | our stand-in |
//! |---------------------|--------|--------------|
//! | NRP | homogeneous, direction-aware PPR factorization | [`NrpLite`] |
//! | TADW, HSCA, AANE | proximity × attribute matrix factorization | [`TadwLite`] |
//! | STNE, DGI (topology-dominant) | topology-only embedding | [`TopoSvd`] |
//! | ARGA (attribute auto-encoder flavor) | attribute-only embedding | [`AttrSvd`] |
//! | CAN, PRRE (undirected joint models) | undirected node+attribute co-embedding | [`CanLite`] |
//! | BANE, LQANR | quantized joint embedding | [`BaneLite`] |
//! | BLA | non-embedding attribute inference | [`BlaLite`] |
//! | PANE-R (paper's own ablation, §5.7) | PANE with random init | [`pane_r::PaneR`] |
//!
//! GATNE targets attributed *heterogeneous* networks; on our single-typed
//! graphs its information content reduces to the CAN family and it is not
//! reproduced separately.
//!
//! Every stand-in implements a common constructor pattern
//! (`fit(&AttributedGraph, dims, seed) -> embedding matrices`) and plugs
//! into `pane-eval`'s scorer traits.

pub mod bla_lite;
pub mod can_lite;
pub mod nrp_lite;
pub mod pane_r;
pub mod svd_baselines;
pub mod tadw_lite;

pub use bla_lite::BlaLite;
pub use can_lite::CanLite;
pub use nrp_lite::NrpLite;
pub use pane_r::PaneR;
pub use svd_baselines::{AttrSvd, BaneLite, TopoSvd};
pub use tadw_lite::TadwLite;
