//! ANN serving subsystem acceptance tests: recall of the approximate
//! indexes against the exact baseline on a real embedded SBM fixture,
//! save→load→identical-results persistence, and the determinism contract
//! (index builds bit-identical across thread counts, like the embedding
//! pipeline itself).

use pane_core::{Pane, PaneConfig};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::{
    load_index, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex,
};
use pane_linalg::DenseMatrix;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Classifier features of an embedded 600-node SBM graph, computed once.
fn features() -> &'static DenseMatrix {
    static FEATURES: OnceLock<DenseMatrix> = OnceLock::new();
    FEATURES.get_or_init(|| {
        let g = generate_sbm(&SbmConfig {
            nodes: 600,
            communities: 6,
            avg_out_degree: 8.0,
            attributes: 30,
            attrs_per_node: 5.0,
            attr_noise: 0.05,
            seed: 77,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(16).seed(9).build())
            .embed(&g)
            .unwrap();
        emb.classifier_feature_matrix()
    })
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pane_ann_index_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn recall_at_10(truth: &FlatIndex, approx: &dyn VectorIndex, data: &DenseMatrix) -> f64 {
    let mut overlap = 0;
    let mut total = 0;
    for v in (0..data.rows()).step_by(7) {
        let exact: Vec<usize> = truth
            .search(data.row(v), 10)
            .into_iter()
            .map(|n| n.index)
            .collect();
        for hit in approx.search(data.row(v), 10) {
            total += 1;
            overlap += usize::from(exact.contains(&hit.index));
        }
    }
    overlap as f64 / total as f64
}

#[test]
fn ivf_and_hnsw_reach_recall_090_on_sbm_embedding() {
    let data = features();
    let flat = FlatIndex::build(data, Metric::Cosine);
    let ivf = IvfIndex::build(
        data,
        Metric::Cosine,
        &IvfConfig {
            nlist: 16,
            nprobe: 8,
            threads: 2,
            ..Default::default()
        },
    );
    let hnsw = HnswIndex::build(data, Metric::Cosine, &HnswConfig::default());
    let r_ivf = recall_at_10(&flat, &ivf, data);
    let r_hnsw = recall_at_10(&flat, &hnsw, data);
    assert!(r_ivf >= 0.9, "IVF recall@10 = {r_ivf:.3} < 0.9");
    assert!(r_hnsw >= 0.9, "HNSW recall@10 = {r_hnsw:.3} < 0.9");
}

#[test]
fn save_load_roundtrip_returns_identical_results() {
    let data = features();
    let indexes: Vec<(&str, Box<dyn VectorIndex>)> = vec![
        ("flat", Box::new(FlatIndex::build(data, Metric::Cosine))),
        (
            "ivf",
            Box::new(IvfIndex::build(
                data,
                Metric::InnerProduct,
                &IvfConfig {
                    nlist: 12,
                    nprobe: 4,
                    ..Default::default()
                },
            )),
        ),
        (
            "hnsw",
            Box::new(HnswIndex::build(
                data,
                Metric::Cosine,
                &HnswConfig::default(),
            )),
        ),
    ];
    for (name, index) in &indexes {
        let path = tmp(&format!("roundtrip_{name}.idx"));
        index.save(&path).unwrap();
        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.kind(), index.kind());
        assert_eq!(loaded.metric(), index.metric());
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.dim(), index.dim());
        for v in (0..data.rows()).step_by(41) {
            let before = index.search(data.row(v), 10);
            let after = loaded.search(data.row(v), 10);
            assert_eq!(before, after, "{name}: results changed across save/load");
        }
    }
}

#[test]
fn index_files_are_bit_identical_across_thread_counts() {
    let data = features();
    let cfg = IvfConfig {
        nlist: 10,
        seed: 5,
        threads: 1,
        ..Default::default()
    };
    let p1 = tmp("ivf_t1.idx");
    let p4 = tmp("ivf_t4.idx");
    IvfIndex::build(data, Metric::Cosine, &cfg)
        .save(&p1)
        .unwrap();
    IvfIndex::build(data, Metric::Cosine, &IvfConfig { threads: 4, ..cfg })
        .save(&p4)
        .unwrap();
    assert_eq!(
        std::fs::read(&p1).unwrap(),
        std::fs::read(&p4).unwrap(),
        "IVF index bytes differ between 1-thread and 4-thread builds"
    );

    // HNSW builds are sequential; two identically seeded builds must also
    // serialize identically.
    let h1 = tmp("hnsw_a.idx");
    let h2 = tmp("hnsw_b.idx");
    let hcfg = HnswConfig {
        seed: 13,
        ..Default::default()
    };
    HnswIndex::build(data, Metric::Cosine, &hcfg)
        .save(&h1)
        .unwrap();
    HnswIndex::build(data, Metric::Cosine, &hcfg)
        .save(&h2)
        .unwrap();
    assert_eq!(std::fs::read(&h1).unwrap(), std::fs::read(&h2).unwrap());
}

#[test]
fn batch_search_matches_single_queries_for_all_kinds() {
    let data = features();
    let queries = data.row_block(0..24);
    let indexes: Vec<Box<dyn VectorIndex>> = vec![
        Box::new(FlatIndex::build(data, Metric::Cosine)),
        Box::new(IvfIndex::build(data, Metric::Cosine, &IvfConfig::default())),
        Box::new(HnswIndex::build(
            data,
            Metric::Cosine,
            &HnswConfig::default(),
        )),
    ];
    for index in &indexes {
        let single: Vec<_> = (0..queries.rows())
            .map(|i| index.search(queries.row(i), 5))
            .collect();
        for threads in [1, 3] {
            assert_eq!(
                index.batch_search(&queries, 5, threads),
                single,
                "{:?} batch_search diverges at {threads} threads",
                index.kind()
            );
        }
    }
}
