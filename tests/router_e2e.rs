//! End-to-end tests for `pane route`: real shard daemons on localhost
//! sockets behind a [`pane_serve::Router`].
//!
//! Pins the acceptance criteria of the multi-daemon serving tier:
//!
//! * with flat shards, routed `similar-nodes` / `recommend-links` are
//!   **bit-identical** to the in-process [`ShardedEngine`] and to the
//!   unsharded exact scan — scores and query vectors cross the wire
//!   through the shortest-roundtrip float formatter, so equality is
//!   exact, not approximate;
//! * a dead shard **degrades** reads (partial results plus
//!   `"degraded":true` and a `shards_down` list) instead of failing
//!   them, and the partial results are themselves exact over the
//!   surviving shards;
//! * a restarted shard **rejoins** automatically via the router's
//!   health probes;
//! * inserts route to the owner daemon and map back to global ids, and
//!   `stats` / `snapshot` aggregate across daemons.

use pane_core::{Pane, PaneConfig};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::IndexSpec;
use pane_loadgen::{
    generate_requests, run, BatchSpec, Endpoint, HandlerEndpoint, Mix, RunPlan, Skew,
    WorkloadConfig,
};
use pane_serve::{
    serve_tcp, ClientConfig, Hit, Json, LineHandler, Router, ServeBackend, ServeEngine,
    ShardedEngine,
};
use pane_store::{shard_dir, shard_of, ShardedStore};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

fn fixture(nodes: usize) -> pane_core::PaneEmbedding {
    let g = generate_sbm(&SbmConfig {
        nodes,
        communities: 4,
        avg_out_degree: 6.0,
        attributes: 20,
        attrs_per_node: 4.0,
        seed: 31,
        ..Default::default()
    });
    Pane::new(PaneConfig::builder().dimension(16).seed(7).build())
        .embed(&g)
        .unwrap()
}

fn tmp_root(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pane_router_e2e_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(5),
        retries: 1,
        backoff: Duration::from_millis(10),
        probe_interval: Duration::from_millis(50),
        // Retry backoff is clock-injected; e2e tests never sleep it.
        sleep: Arc::new(|_| {}),
    }
}

struct ShardDaemon {
    addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Boots one `pane serve`-equivalent daemon over one shard directory.
/// `at` pins the listen address (for restarts); `None` takes any port.
fn start_daemon(dir: &Path, at: Option<SocketAddr>) -> ShardDaemon {
    let listener = match at {
        // A just-closed listener port may linger briefly; retry the bind.
        Some(addr) => {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match TcpListener::bind(addr) {
                    Ok(l) => break l,
                    Err(e) if Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => panic!("cannot rebind {addr}: {e}"),
                }
            }
        }
        None => TcpListener::bind("127.0.0.1:0").unwrap(),
    };
    let addr = listener.local_addr().unwrap();
    let engine = ServeEngine::open(dir, 1).unwrap();
    let handle = std::thread::spawn(move || {
        serve_tcp(Arc::new(RwLock::new(engine)), listener).unwrap();
    });
    ShardDaemon {
        addr,
        handle: Some(handle),
    }
}

impl ShardDaemon {
    /// Clean shutdown: the daemon answers, drains, and releases its
    /// store lock (so the directory can be reopened by a restart).
    fn stop(&mut self) {
        let mut conn = TcpStream::connect(self.addr).unwrap();
        conn.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        self.handle.take().unwrap().join().unwrap();
    }
}

fn ask(router: &Router, line: &str) -> Json {
    let (resp, _) = router.handle(line);
    pane_serve::parse(&resp).unwrap()
}

fn results_of(resp: &Json) -> Vec<Vec<(usize, f64)>> {
    let Some(Json::Arr(batches)) = resp.get("results") else {
        panic!("no results in {resp:?}");
    };
    batches
        .iter()
        .map(|b| {
            let Json::Arr(hits) = b else {
                panic!("bad batch {b:?}")
            };
            hits.iter()
                .map(|h| {
                    (
                        h.get("node").unwrap().as_index().unwrap(),
                        h.get("score").unwrap().as_f64().unwrap(),
                    )
                })
                .collect()
        })
        .collect()
}

fn pairs(hits: &[Vec<Hit>]) -> Vec<Vec<(usize, f64)>> {
    hits.iter()
        .map(|b| b.iter().map(|h| (h.node, h.score)).collect())
        .collect()
}

#[test]
fn routed_top_k_is_bit_identical_to_in_process_engines() {
    const N: usize = 121;
    const SHARDS: usize = 3;
    let emb = fixture(N);
    let root = tmp_root("bitident");
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, SHARDS, 2).unwrap();

    let nodes: Vec<usize> = (0..N).step_by(7).collect();
    let (want_sim, want_links) = {
        // The store layer holds exclusive file locks, so compute the
        // in-process expectation first and drop it before the daemons
        // open the same directories.
        let eng = ShardedEngine::open(&root, 2).unwrap();
        (
            eng.similar_nodes(&nodes, 10).unwrap(),
            eng.recommend_links(&nodes, 8, &[3, 11]).unwrap(),
        )
    };
    // Transitivity check against the unsharded exact scan as well.
    let unsharded = ServeEngine::build(emb, &IndexSpec::Flat, 2);
    assert_eq!(
        pairs(&unsharded.similar_nodes(&nodes, 10).unwrap()),
        pairs(&want_sim)
    );

    let mut daemons: Vec<ShardDaemon> = (0..SHARDS)
        .map(|s| start_daemon(&shard_dir(&root, s), None))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.to_string()).collect();
    let router = Router::connect(&addrs, client_config()).unwrap();

    let sim = ask(
        &router,
        &format!(
            r#"{{"op":"similar-nodes","nodes":[{}],"k":10}}"#,
            nodes
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    assert_eq!(sim.get("ok"), Some(&Json::Bool(true)), "{sim:?}");
    assert_eq!(sim.get("degraded"), Some(&Json::Bool(false)));
    assert_eq!(
        results_of(&sim),
        pairs(&want_sim),
        "similar-nodes diverged over the wire"
    );

    let links = ask(
        &router,
        &format!(
            r#"{{"op":"recommend-links","nodes":[{}],"k":8,"exclude":[3,11]}}"#,
            nodes
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    );
    assert_eq!(links.get("ok"), Some(&Json::Bool(true)), "{links:?}");
    assert_eq!(
        results_of(&links),
        pairs(&want_links),
        "recommend-links diverged over the wire"
    );

    drop(router);
    for d in &mut daemons {
        d.stop();
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn dead_shard_degrades_reads_and_recovers_after_restart() {
    const N: usize = 90;
    const SHARDS: usize = 3;
    const DEAD: usize = 1;
    let emb = fixture(N);
    let root = tmp_root("degrade");
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, SHARDS, 1).unwrap();

    let nodes: Vec<usize> = (0..N).step_by(5).collect();
    let k = 6;
    // Ground truth from the unsharded exact scan: a full-width ranking
    // per query, from which both the healthy and the degraded
    // expectations derive exactly.
    let unsharded = ServeEngine::build(emb, &IndexSpec::Flat, 2);
    let healthy = unsharded.similar_nodes(&nodes, k).unwrap();
    let wide = unsharded.similar_nodes(&nodes, N).unwrap();
    let degraded_want: Vec<Vec<(usize, f64)>> = wide
        .iter()
        .map(|b| {
            b.iter()
                .filter(|h| shard_of(h.node, SHARDS) != DEAD)
                .take(k)
                .map(|h| (h.node, h.score))
                .collect()
        })
        .collect();

    let mut daemons: Vec<ShardDaemon> = (0..SHARDS)
        .map(|s| start_daemon(&shard_dir(&root, s), None))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.to_string()).collect();
    let router = Router::connect(&addrs, client_config()).unwrap();
    let query = format!(
        r#"{{"op":"similar-nodes","nodes":[{}],"k":{k}}}"#,
        nodes
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(results_of(&ask(&router, &query)), pairs(&healthy));

    // Kill one shard daemon; reads must keep answering, partially.
    let dead_addr = daemons[DEAD].addr;
    daemons[DEAD].stop();
    let resp = ask(&router, &query);
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "a dead shard must degrade, not fail: {resp:?}"
    );
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        resp.get("shards_down").unwrap().as_index_array(),
        Some(vec![DEAD])
    );
    let got = results_of(&resp);
    for (qi, &v) in nodes.iter().enumerate() {
        if shard_of(v, SHARDS) == DEAD {
            // The dead daemon owned this query's vector: empty, not error.
            assert!(got[qi].is_empty(), "node {v}: expected empty results");
        } else {
            assert_eq!(
                got[qi], degraded_want[qi],
                "node {v}: degraded results must be exact over surviving shards"
            );
        }
    }

    // An insert whose owner is down is an error (writes never degrade).
    // The next global id N = 90 is owned by shard 90 % 3 = 0 (alive), so
    // probe the dead owner via a stats check instead: the response must
    // carry it in shards_down.
    let st = ask(&router, r#"{"op":"stats"}"#);
    assert_eq!(st.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        st.get("shards_down").unwrap().as_index_array(),
        Some(vec![DEAD])
    );

    // Restart the daemon on the same address; the health probes must
    // re-admit it and full-fidelity answers must return.
    daemons[DEAD] = start_daemon(&shard_dir(&root, DEAD), Some(dead_addr));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = ask(&router, r#"{"op":"stats"}"#);
        if st.get("degraded") == Some(&Json::Bool(false)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router did not re-admit the restarted shard: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        results_of(&ask(&router, &query)),
        pairs(&healthy),
        "post-recovery results must match the healthy baseline"
    );

    drop(router);
    for d in &mut daemons {
        d.stop();
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn router_metrics_track_queries_and_shard_death_over_live_daemons() {
    const N: usize = 60;
    const SHARDS: usize = 2;
    const DEAD: usize = 1;
    let emb = fixture(N);
    let root = tmp_root("metrics");
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, SHARDS, 1).unwrap();

    let mut daemons: Vec<ShardDaemon> = (0..SHARDS)
        .map(|s| start_daemon(&shard_dir(&root, s), None))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.to_string()).collect();
    let router = Router::connect(&addrs, client_config()).unwrap();

    // Healthy traffic: two queries and a stats probe.
    let query = r#"{"op":"similar-nodes","nodes":[1,5,9],"k":4}"#;
    for _ in 0..2 {
        let resp = ask(&router, query);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }
    let st = ask(&router, r#"{"op":"stats"}"#);
    assert_eq!(
        st.get("uptime_secs").map(|v| v.as_f64().is_some()),
        Some(true)
    );
    assert_eq!(st.get("requests_total").unwrap().as_index(), Some(2));

    let m = ask(&router, r#"{"op":"metrics"}"#);
    assert_eq!(m.get("ok"), Some(&Json::Bool(true)), "{m:?}");
    let text = m.get("text").unwrap().as_str().unwrap().to_string();
    assert!(
        text.contains(r#"pane_router_requests_total{op="similar-nodes"} 2"#),
        "query counter missing:\n{text}"
    );
    assert!(text.contains("pane_router_degraded_responses_total 0"));
    assert!(text.contains(r#"pane_shard_up{shard="0"} 1"#));
    assert!(text.contains(r#"pane_shard_up{shard="1"} 1"#));
    // The JSON form is live too, and agrees on the request count.
    let counters = m.get("metrics").unwrap().get("counters").unwrap();
    assert_eq!(
        counters
            .get(r#"pane_router_requests_total{op="similar-nodes"}"#)
            .unwrap()
            .as_index(),
        Some(2)
    );

    // Kill one daemon; a degraded query must flip the health metrics.
    daemons[DEAD].stop();
    let resp = ask(&router, query);
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)), "{resp:?}");

    let m = ask(&router, r#"{"op":"metrics"}"#);
    let text = m.get("text").unwrap().as_str().unwrap().to_string();
    assert!(
        text.contains(r#"pane_shard_up{shard="1"} 0"#),
        "dead shard still marked up:\n{text}"
    );
    let gauges = m.get("metrics").unwrap().get("gauges").unwrap();
    assert_eq!(
        gauges.get("pane_router_shards_down").unwrap().as_index(),
        Some(1)
    );
    let counters = m.get("metrics").unwrap().get("counters").unwrap();
    let degraded = counters
        .get("pane_router_degraded_responses_total")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(degraded >= 1.0, "degraded counter did not move: {degraded}");
    let retries = counters
        .get(r#"pane_shard_retries_total{shard="1"}"#)
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(retries >= 1.0, "retry counter did not move: {retries}");
    assert!(
        counters
            .get(r#"pane_shard_down_transitions_total{shard="1"}"#)
            .unwrap()
            .as_f64()
            .unwrap()
            >= 1.0
    );

    drop(router);
    daemons.remove(DEAD);
    for d in &mut daemons {
        d.stop();
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Chaos e2e (PR 9): the open-loop load generator drives the router
/// while one shard daemon dies mid-run. Every scheduled request must
/// resolve — ok (possibly `"degraded":true`) or a recorded error, never
/// a hang — responses must keep echoing their request's op (no protocol
/// desync across the unknown-outcome window), and the router must still
/// answer over the survivors and re-admit the shard when it returns.
#[test]
fn open_loop_chaos_shard_death_mid_run_degrades_without_desync() {
    const N: usize = 90;
    const SHARDS: usize = 2;
    const DEAD: usize = 1;
    let emb = fixture(N);
    let half_dim = emb.forward.cols();
    let root = tmp_root("chaos");
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, SHARDS, 1).unwrap();
    let mut daemons: Vec<ShardDaemon> = (0..SHARDS)
        .map(|s| start_daemon(&shard_dir(&root, s), None))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.to_string()).collect();
    // A tight request timeout: a connection stuck on a dying daemon
    // resolves in 0.5 s, not the default 5 s — this test measures
    // degradation behavior, not timeout patience.
    let router = Arc::new(
        Router::connect(
            &addrs,
            ClientConfig {
                request_timeout: Duration::from_millis(500),
                ..client_config()
            },
        )
        .unwrap(),
    );

    let wl = WorkloadConfig {
        mix: Mix {
            similar: 70,
            links: 10,
            insert: 20,
        },
        skew: Skew::Zipf(1.1),
        batch: BatchSpec { min: 1, max: 3 },
        k: 5,
        seed: 777,
    };
    // 400 requests at 800 qps: the schedule spans ≥ 500 ms of wall
    // clock, so a kill at 150 ms lands squarely mid-run.
    let requests = generate_requests(&wl, N, half_dim, 400);
    let plan = RunPlan {
        qps: 800.0,
        connections: 4,
    };
    let handler = Arc::clone(&router);
    let connect =
        move || Ok(Box::new(HandlerEndpoint::new(Arc::clone(&handler))) as Box<dyn Endpoint>);
    let mut dead = daemons.pop().expect("shard DEAD is the last daemon");
    let dead_addr = dead.addr;
    let (report, _) = std::thread::scope(|s| {
        let killer = s.spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            dead.stop();
        });
        let report = run(&plan, &requests, &connect).unwrap();
        (report, killer.join().unwrap())
    });
    // Every scheduled request resolved, and none took anywhere near a
    // hang: the whole chaotic run is bounded.
    assert_eq!(report.sent, 400);
    assert!(
        report.wall < Duration::from_secs(30),
        "chaotic run must not hang: {:?}",
        report.wall
    );
    for o in &report.outcomes {
        assert!(
            o.ok || o.error.is_some(),
            "request {} vanished without ok or error",
            o.index
        );
        if o.ok {
            // No protocol desync: an ok response always answers the op
            // that was asked, even right after unknown-outcome inserts.
            assert_eq!(
                o.resp_op.as_deref(),
                Some(o.op.wire_name()),
                "request {} got an answer for a different op",
                o.index
            );
        }
    }
    assert!(report.ok > 0, "the healthy window must have succeeded");
    assert!(
        report.degraded + report.errors > 0,
        "killing a shard mid-run must surface as degradation or errors"
    );

    // The router still answers over the survivors: reads degrade, and
    // every returned hit is owned by a surviving shard.
    let st = ask(&router, r#"{"op":"stats"}"#);
    assert_eq!(st.get("ok"), Some(&Json::Bool(true)), "{st:?}");
    assert_eq!(st.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        st.get("shards_down").unwrap().as_index_array(),
        Some(vec![DEAD])
    );
    let resp = ask(&router, r#"{"op":"similar-nodes","nodes":[0,2,4],"k":5}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(true)));
    for batch in results_of(&resp) {
        assert!(!batch.is_empty(), "survivor-owned queries must answer");
        for (node, _) in batch {
            assert_ne!(
                shard_of(node, SHARDS),
                DEAD,
                "a hit owned by the dead shard appeared in degraded results"
            );
        }
    }
    // The shard returns on its old address and is re-admitted.
    let mut revived = start_daemon(&shard_dir(&root, DEAD), Some(dead_addr));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let st = ask(&router, r#"{"op":"stats"}"#);
        if st.get("degraded") == Some(&Json::Bool(false)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router did not re-admit the revived shard: {st:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let resp = ask(&router, r#"{"op":"similar-nodes","nodes":[0,2,4],"k":5}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("degraded"), Some(&Json::Bool(false)));
    drop(router);
    revived.stop();
    for d in &mut daemons {
        d.stop();
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn inserts_stats_and_snapshot_work_through_a_routed_tcp_session() {
    const N: usize = 60;
    const SHARDS: usize = 2;
    let emb = fixture(N);
    let half_dim = emb.forward.cols();
    let root = tmp_root("write");
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, SHARDS, 1).unwrap();
    let mut daemons: Vec<ShardDaemon> = (0..SHARDS)
        .map(|s| start_daemon(&shard_dir(&root, s), None))
        .collect();
    let addrs: Vec<String> = daemons.iter().map(|d| d.addr.to_string()).collect();

    // The full stack: the router itself served over TCP.
    let router = Router::connect(&addrs, client_config()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let router_addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve_tcp(Arc::new(router), listener).unwrap());

    let conn = TcpStream::connect(router_addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |line: &str| -> Json {
        let mut w = &conn;
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        pane_serve::parse(&out).unwrap()
    };

    // Two inserts land on alternating owners and get global ids.
    let half: Vec<String> = (0..half_dim).map(|i| format!("0.{}", i + 1)).collect();
    let vec_json = format!("[{}]", half.join(","));
    for i in 0..2 {
        let resp = ask(&format!(
            r#"{{"op":"insert","forward":{vec_json},"backward":{vec_json}}}"#
        ));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        assert_eq!(resp.get("id").unwrap().as_index(), Some(N + i));
        assert_eq!(
            resp.get("shard").unwrap().as_index(),
            Some((N + i) % SHARDS)
        );
    }

    let st = ask(r#"{"op":"stats"}"#);
    assert_eq!(st.get("router"), Some(&Json::Bool(true)));
    assert_eq!(st.get("nodes").unwrap().as_index(), Some(N + 2));
    assert_eq!(st.get("shards").unwrap().as_index(), Some(SHARDS));
    assert_eq!(st.get("degraded"), Some(&Json::Bool(false)));

    // The two identical inserted rows are each other's nearest
    // neighbors, across shard daemons.
    let sim = ask(&format!(
        r#"{{"op":"similar-nodes","nodes":[{},{}],"k":1}}"#,
        N,
        N + 1
    ));
    let got = results_of(&sim);
    assert_eq!(got[0][0].0, N + 1);
    assert_eq!(got[1][0].0, N);

    // Snapshot commits a new generation in every shard.
    let snap = ask(r#"{"op":"snapshot"}"#);
    assert_eq!(snap.get("ok"), Some(&Json::Bool(true)), "{snap:?}");
    assert_eq!(snap.get("generation").unwrap().as_index(), Some(2));
    assert_eq!(snap.get("folded").unwrap().as_index(), Some(2));

    let bye = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    drop(conn);
    server.join().unwrap();
    for d in &mut daemons {
        d.stop();
    }

    // Durability: the snapshot survives a full fleet restart.
    let eng = ShardedEngine::open(&root, 1).unwrap();
    let status = eng.status();
    assert_eq!(status.nodes, N + 2);
    let store = status.store.unwrap();
    assert_eq!((store.generation, store.wal_records), (2, 0));
    std::fs::remove_dir_all(&root).ok();
}
