//! Cross-crate validation of the paper's formal claims on real pipelines.

use pane::pane_core::{apmi, papmi, ApmiInputs};
use pane::pane_graph::walks::{RestartRule, WalkSimulator};
use pane::pane_graph::DanglingPolicy;
use pane::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn inputs(
    g: &pane::pane_graph::AttributedGraph,
) -> (
    pane::pane_sparse::CsrMatrix,
    pane::pane_sparse::CsrMatrix,
    pane::pane_sparse::CsrMatrix,
    pane::pane_sparse::CsrMatrix,
) {
    let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
    let pt = p.transpose();
    let rr = g.attr_row_normalized();
    let rc = g.attr_col_normalized();
    (p, pt, rr, rc)
}

/// Lemma 3.1: the truncated walk distributions deviate from the exact ones
/// by at most the tail mass, entrywise — the premise from which the
/// lemma's multiplicative affinity bound follows. Our recurrence collapses
/// the tail onto the t-th hop (see `pane_core::apmi` docs), giving
/// `|P_f^{(t)} − P_f| ≤ (1−α)^t` entrywise; we verify that bound against a
/// dense exact reference, plus the lemma-style relative bound on entries
/// whose exact mass dominates the tail.
#[test]
fn lemma_3_1_truncation_error_bound() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.05, 1).graph;
    let p = g.random_walk_matrix(DanglingPolicy::SelfLoop).to_dense();
    let rr = g.attr_row_normalized().to_dense();
    let alpha = 0.5;

    // Exact P_f by explicit series summation (converged at t = 80).
    let series = |t: usize| {
        // alpha * sum_{l=0..t} (1-alpha)^l P^l R_r, computed iteratively.
        let mut term = rr.clone(); // P^l R_r
        let mut acc = rr.clone();
        acc.scale_inplace(alpha);
        let mut weight = alpha;
        for _ in 0..t {
            term = p.matmul(&term);
            weight *= 1.0 - alpha;
            acc.axpy_inplace(weight, &term);
        }
        acc
    };
    let exact = series(80);

    // Our recurrence, as APMI computes it.
    let recurrence = |t: usize| {
        let mut cur = rr.clone();
        for _ in 0..t {
            let mut next = p.matmul(&cur);
            next.scale_inplace(1.0 - alpha);
            next.axpy_inplace(alpha, &rr);
            cur = next;
        }
        cur
    };

    for t in [1usize, 3, 6, 9] {
        let eps = (1.0 - alpha).powi(t as i32);
        let approx = recurrence(t);
        // Entrywise premise.
        let worst = approx.max_abs_diff(&exact);
        assert!(
            worst <= eps + 1e-12,
            "t={t}: |P_f^(t) - P_f| = {worst} > {eps}"
        );
        // Lemma-style relative bound where the exact mass dominates the
        // tail: ratio within [1 - eps/Pf, 1 + eps/Pf].
        for (a, b) in approx.data().iter().zip(exact.data()) {
            if *b >= 10.0 * eps {
                let ratio = a / b;
                assert!(
                    (1.0 - eps / b..=1.0 + eps / b).contains(&ratio),
                    "t={t}: ratio {ratio} outside lemma bound for Pf={b}"
                );
            }
        }
    }
}

/// Lemma 4.1 end-to-end: PAPMI equals APMI bit-for-bit on a zoo dataset.
#[test]
fn lemma_4_1_papmi_equals_apmi() {
    let g = DatasetZoo::PubmedLike.generate_scaled(0.02, 2).graph;
    let (p, pt, rr, rc) = inputs(&g);
    let ins = ApmiInputs {
        p: &p,
        pt: &pt,
        rr: &rr,
        rc: &rc,
        alpha: 0.5,
        t: 6,
    };
    let serial = apmi(&ins);
    for nb in [2usize, 3, 8] {
        let par = papmi(&ins, nb);
        assert_eq!(serial.forward.data(), par.forward.data(), "nb={nb}");
        assert_eq!(serial.backward.data(), par.backward.data(), "nb={nb}");
    }
}

/// APMI ≈ Monte-Carlo walks on a graph where every node is attributed
/// (where the matrix form and the sampled walks coincide exactly).
#[test]
fn apmi_matches_monte_carlo_on_zoo_graph() {
    let mut cfg = DatasetZoo::CoraLike.config(0.02, 3);
    cfg.attrs_per_node = 4.0; // ensure nonzero attrs; generator guarantees >= ~k
    let g = pane::pane_graph::gen::generate_sbm(&cfg);
    // Skip nodes without attributes in the comparison (the matrix form
    // leaves their lost mass unnormalized; see walks.rs docs).
    let alpha = 0.5;
    let (p, pt, rr, rc) = inputs(&g);
    let aff = apmi(&ApmiInputs {
        p: &p,
        pt: &pt,
        rr: &rr,
        rc: &rc,
        alpha,
        t: 40,
    });
    let sim = WalkSimulator::new(&g, alpha, DanglingPolicy::SelfLoop, RestartRule::Discard);
    let mut rng = StdRng::seed_from_u64(11);
    let nr = 4000;
    let pf_mc = sim.estimate_forward(nr, &mut rng);
    // Compare the raw distributions on a sample of attributed nodes.
    let mut checked = 0;
    let mut worst: f64 = 0.0;
    let pf_exact = {
        // Recover P_f from F': P̂_f = (e^{F'} - 1)/n, then un-normalize is
        // unnecessary — compare column-normalized forms of both.
        let mut m = aff.forward.clone();
        m.map_inplace(|v| (v.exp() - 1.0) / g.num_nodes() as f64);
        m
    };
    let mut pf_mc_norm = pf_mc.clone();
    let sums = pf_mc_norm.col_sums();
    for i in 0..pf_mc_norm.rows() {
        let row = pf_mc_norm.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = if sums[j] > 0.0 { *v / sums[j] } else { 0.0 };
        }
    }
    for v in 0..g.num_nodes() {
        if g.node_attributes(v).0.is_empty() {
            continue;
        }
        for r in 0..g.num_attributes() {
            worst = worst.max((pf_exact.get(v, r) - pf_mc_norm.get(v, r)).abs());
            checked += 1;
        }
    }
    assert!(checked > 0);
    assert!(
        worst < 0.08,
        "MC vs APMI column-normalized deviation {worst}"
    );
}

/// The objective is identical whether evaluated through the maintained
/// residuals or recomputed from the embeddings (Eq. 4 == ‖S_f‖²+‖S_b‖²).
#[test]
fn objective_consistency_through_pipeline() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.05, 5).graph;
    let pane = Pane::new(PaneConfig::builder().dimension(16).seed(1).build());
    let (emb, aff) = pane.embed_with_affinity(&g).unwrap();
    let mut sf = emb.forward.matmul_transb(&emb.attribute);
    sf.axpy_inplace(-1.0, &aff.forward);
    let mut sb = emb.backward.matmul_transb(&emb.attribute);
    sb.axpy_inplace(-1.0, &aff.backward);
    let recomputed = sf.frob_norm_sq() + sb.frob_norm_sq();
    let rel = (recomputed - emb.objective).abs() / recomputed.max(1e-12);
    assert!(
        rel < 1e-9,
        "objective drift: reported {} vs recomputed {recomputed}",
        emb.objective
    );
}

/// Eq. 21/22 consistency: attribute and link scores computed through the
/// public API equal the raw formula on the embedding matrices.
#[test]
fn scoring_formulas_match_raw_algebra() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.04, 6).graph;
    let emb = Pane::new(PaneConfig::builder().dimension(16).seed(2).build())
        .embed(&g)
        .unwrap();
    let gram = emb.link_gram();
    for v in (0..g.num_nodes()).step_by(11) {
        for r in (0..g.num_attributes()).step_by(7) {
            let api = emb.attribute_score(v, r);
            let raw = pane::pane_linalg::vecops::dot(emb.forward.row(v), emb.attribute.row(r))
                + pane::pane_linalg::vecops::dot(emb.backward.row(v), emb.attribute.row(r));
            assert!((api - raw).abs() < 1e-12);
        }
        let w = (v * 3 + 1) % g.num_nodes();
        // Eq. 22 brute force: sum over attributes.
        let mut brute = 0.0;
        for r in 0..g.num_attributes() {
            let f = pane::pane_linalg::vecops::dot(emb.forward.row(v), emb.attribute.row(r));
            let b = pane::pane_linalg::vecops::dot(emb.backward.row(w), emb.attribute.row(r));
            brute += f * b;
        }
        let api = emb.link_score_with(&gram, v, w);
        assert!(
            (api - brute).abs() < 1e-6 * (1.0 + brute.abs()),
            "link score mismatch: {api} vs {brute}"
        );
    }
}
