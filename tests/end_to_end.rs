//! Cross-crate integration tests: full pipelines on generated data,
//! asserting the qualitative shape of the paper's evaluation (PANE wins
//! against the baseline families on homophilous attributed graphs).

use pane::pane_baselines::{AttrSvd, BlaLite, CanLite, NrpLite, TopoSvd};
use pane::pane_eval::scoring::{MatrixFeatureSource, PaneScorer};
use pane::pane_eval::split::{split_attribute_entries, split_edges};
use pane::pane_eval::tasks::evaluate_attr_scorer;
use pane::pane_eval::tasks::link_pred::{best_of_four, evaluate_link_scorer};
use pane::pane_eval::tasks::node_class::{node_classification, NodeClassOptions};
use pane::prelude::*;

fn test_graph(seed: u64) -> pane::pane_graph::AttributedGraph {
    // Directed, homophilous, attribute-clustered: the regime the paper's
    // datasets live in (scaled down for test speed).
    pane::pane_graph::gen::generate_sbm(&pane::pane_graph::gen::SbmConfig {
        nodes: 500,
        communities: 5,
        avg_out_degree: 8.0,
        p_in: 0.85,
        attributes: 60,
        attrs_per_node: 6.0,
        attr_noise: 0.15,
        seed,
        ..Default::default()
    })
}

fn pane_cfg(threads: usize) -> PaneConfig {
    PaneConfig::builder()
        .dimension(32)
        .threads(threads)
        .seed(7)
        .build()
}

#[test]
fn link_prediction_pane_beats_single_signal_baselines() {
    let g = test_graph(1);
    let split = split_edges(&g, 0.3, 2);
    let sym = g.is_undirected();

    let emb = Pane::new(pane_cfg(1)).embed(&split.residual).unwrap();
    let pane_auc = evaluate_link_scorer(&PaneScorer::new(&emb), &split, sym).auc;

    let topo = TopoSvd::fit(&split.residual, 32, 0.5, 6, 3);
    let (topo_res, _) = best_of_four(&topo.x, &split, true, 3);

    let attr = AttrSvd::fit(&split.residual, 32, 3);
    let (attr_res, _) = best_of_four(&attr.x, &split, true, 3);

    assert!(pane_auc > 0.8, "PANE link AUC too low: {pane_auc}");
    assert!(
        pane_auc > topo_res.auc - 0.02,
        "PANE {pane_auc} should not lose to topology-only {}",
        topo_res.auc
    );
    assert!(
        pane_auc > attr_res.auc - 0.02,
        "PANE {pane_auc} should not lose to attribute-only {}",
        attr_res.auc
    );
}

#[test]
fn attribute_inference_pane_beats_bla_like() {
    let g = test_graph(4);
    let split = split_attribute_entries(&g, 0.2, 5);

    let emb = Pane::new(pane_cfg(1)).embed(&split.residual).unwrap();
    let pane_res = evaluate_attr_scorer(&PaneScorer::new(&emb), &split);

    let bla = BlaLite::fit(&split.residual, 0.7, 6);
    let bla_res = evaluate_attr_scorer(&bla, &split);

    assert!(
        pane_res.auc > 0.75,
        "PANE attr AUC too low: {}",
        pane_res.auc
    );
    assert!(
        pane_res.auc >= bla_res.auc - 0.03,
        "PANE {} should be competitive with BLA-like {}",
        pane_res.auc,
        bla_res.auc
    );
}

#[test]
fn node_classification_beats_topology_only() {
    let g = test_graph(6);
    let emb = Pane::new(pane_cfg(1)).embed(&g).unwrap();
    let scorer = PaneScorer::new(&emb);
    let opts = NodeClassOptions {
        train_frac: 0.3,
        repeats: 3,
        seed: 1,
        ..Default::default()
    };
    let pane_res = node_classification(&scorer, g.labels(), g.num_labels(), &opts);

    let nrp = NrpLite::fit(&g, 32, 0.5, 6, 1);
    let nrp_res = node_classification(&nrp, g.labels(), g.num_labels(), &opts);

    assert!(
        pane_res.micro_f1 > 0.7,
        "PANE micro-F1 too low: {}",
        pane_res.micro_f1
    );
    assert!(
        pane_res.micro_f1 >= nrp_res.micro_f1 - 0.03,
        "PANE {} should be competitive with NRP-like {}",
        pane_res.micro_f1,
        nrp_res.micro_f1
    );
}

#[test]
fn parallel_pane_matches_serial_quality() {
    let g = test_graph(8);
    let split = split_edges(&g, 0.3, 9);
    let sym = g.is_undirected();

    let serial = Pane::new(pane_cfg(1)).embed(&split.residual).unwrap();
    let parallel = Pane::new(pane_cfg(4)).embed(&split.residual).unwrap();

    let auc_s = evaluate_link_scorer(&PaneScorer::new(&serial), &split, sym).auc;
    let auc_p = evaluate_link_scorer(&PaneScorer::new(&parallel), &split, sym).auc;
    // §5.2: "parallel PANE has close performance to that of PANE (single
    // thread)" — e.g. 0.004 AUC difference on Pubmed.
    assert!(
        (auc_s - auc_p).abs() < 0.03,
        "parallel AUC {auc_p} deviates from serial {auc_s}"
    );
}

#[test]
fn undirected_input_is_supported_end_to_end() {
    let g = pane::pane_graph::gen::generate_sbm(&pane::pane_graph::gen::SbmConfig {
        nodes: 300,
        communities: 3,
        avg_out_degree: 6.0,
        attributes: 30,
        attrs_per_node: 4.0,
        undirected: true,
        seed: 10,
        ..Default::default()
    });
    assert!(g.is_undirected());
    let split = split_edges(&g, 0.3, 11);
    let emb = Pane::new(pane_cfg(1)).embed(&split.residual).unwrap();
    let res = evaluate_link_scorer(&PaneScorer::new(&emb), &split, true);
    assert!(res.auc > 0.75, "undirected link AUC {}", res.auc);
}

#[test]
fn joint_embedding_beats_quantized_on_features() {
    // BANE-like binarization loses accuracy vs CAN-like full precision for
    // classification — the Table-5/Figure-2 shape for the quantized family.
    let g = test_graph(12);
    let can = CanLite::fit(&g, 32, 0.5, 6, 2);
    let bane = pane::pane_baselines::BaneLite::fit(&g, 32, 0.5, 6, 2);
    let opts = NodeClassOptions {
        train_frac: 0.5,
        repeats: 3,
        seed: 2,
        ..Default::default()
    };
    let can_res = node_classification(&can, g.labels(), g.num_labels(), &opts);
    let bane_src = MatrixFeatureSource { x: &bane.x };
    let bane_res = node_classification(&bane_src, g.labels(), g.num_labels(), &opts);
    assert!(
        can_res.micro_f1 >= bane_res.micro_f1 - 0.02,
        "full precision {} should not lose to binarized {}",
        can_res.micro_f1,
        bane_res.micro_f1
    );
}
