//! End-to-end serving test: the acceptance path of the `pane serve`
//! subsystem, exercised through the library (the CLI transports are
//! covered in `crates/cli/tests/cli.rs`).
//!
//! One shared index pair is loaded from disk exactly once, batched
//! queries are served over it, a node arriving through `pane-core`'s
//! incremental path (`grow_embedding` + `reembed_warm`) is inserted and
//! returned by the *next* query without any index rebuild, and exact vs
//! ANN backends answer on the same documented score scale.

use pane::prelude::*;
use pane_core::{grow_embedding, reembed_warm};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::{load_index, Metric, VectorIndex};
use pane_serve::{serve_lines, Json, ServeEngine};
use std::sync::RwLock;

fn sbm(nodes: usize, seed: u64) -> AttributedGraph {
    generate_sbm(&SbmConfig {
        nodes,
        communities: 4,
        avg_out_degree: 6.0,
        attributes: 20,
        attrs_per_node: 4.0,
        seed,
        ..Default::default()
    })
}

fn cfg() -> PaneConfig {
    PaneConfig::builder().dimension(16).seed(11).build()
}

#[test]
fn daemon_serves_shared_index_with_incremental_inserts() {
    let dir = std::env::temp_dir().join(format!("pane_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Offline: embed, build the shared index pair, persist everything —
    // what `pane embed` + `pane index build` produce for the daemon.
    let g0 = sbm(220, 5);
    let emb = Pane::new(cfg()).embed(&g0).unwrap();
    let node_path = dir.join("node.idx");
    let link_path = dir.join("link.idx");
    HnswIndex::build(
        &emb.classifier_feature_matrix(),
        Metric::InnerProduct,
        &HnswConfig::default(),
    )
    .save(&node_path)
    .unwrap();
    FlatIndex::build(&emb.backward, Metric::InnerProduct)
        .save(&link_path)
        .unwrap();

    // Daemon boot: load the shared indexes once.
    let node_base = load_index(&node_path).unwrap();
    let link_base = load_index(&link_path).unwrap();
    let mut engine = ServeEngine::new(emb.clone(), node_base, link_base, 3).unwrap();
    assert_eq!(engine.num_nodes(), 220);

    // Batched queries against the shared structures.
    let nodes: Vec<usize> = (0..220).step_by(17).collect();
    let sim = engine.similar_nodes(&nodes, 10).unwrap();
    let links = engine.recommend_links(&nodes, 5, &[]).unwrap();
    assert_eq!(sim.len(), nodes.len());
    assert_eq!(links.len(), nodes.len());

    // Unified score scale: whatever the ANN backend returns for
    // similar-nodes must equal the exact backend's score for the same
    // pair, bit-for-bit; link scores must be genuine Eq. 22 values.
    let exact = EmbeddingQuery::new(&emb);
    let gram = emb.link_gram();
    for (qi, &v) in nodes.iter().enumerate() {
        let truth: Vec<_> = exact.similar_nodes(v, 220).into_iter().collect();
        for h in &sim[qi] {
            let t = truth
                .iter()
                .find(|s| s.index == h.node)
                .expect("ANN hit missing from exact scan");
            assert_eq!(
                h.score, t.score,
                "score scale diverged at ({v}, {})",
                h.node
            );
        }
        for h in &links[qi] {
            let direct = emb.link_score_with(&gram, v, h.node);
            assert!((h.score - direct).abs() < 1e-10, "not an Eq. 22 score");
        }
    }

    // A node arrives: re-embed offline through the incremental path and
    // push only the new rows into the running daemon.
    let n = g0.num_nodes();
    let mut b = GraphBuilder::new(n + 1, g0.num_attributes());
    for (i, j, _) in g0.adjacency().iter() {
        b.add_edge(i, j);
    }
    for (v, r, w) in g0.attributes().iter() {
        b.add_attribute(v, r, w);
    }
    // Wire the newcomer into community structure around node 0.
    b.add_edge(n, 0);
    b.add_edge(0, n);
    b.add_edge(n, 1);
    b.add_attribute(n, 0, 1.0);
    b.add_attribute(n, 1, 1.0);
    let g1 = b.build();
    let warm = reembed_warm(&cfg(), &g1, &grow_embedding(&emb, 1), 2).unwrap();

    let base_before = engine.node_stats().base;
    let id = engine
        .insert(warm.forward.row(n), warm.backward.row(n))
        .unwrap();
    assert_eq!(id, n);
    // No rebuild: the base is untouched, the delta holds the newcomer.
    assert_eq!(engine.node_stats().base, base_before);
    assert_eq!(engine.node_stats().delta, 1);
    assert_eq!(engine.link_stats().delta, 1);

    // The very next queries see the node — as a query source and as a
    // result (scan wide enough that the exact delta merge must surface it).
    let sim_new = engine.similar_nodes(&[id], 5).unwrap();
    assert_eq!(sim_new[0].len(), 5);
    let wide = engine.similar_nodes(&[0], n + 1).unwrap();
    assert!(
        wide[0].iter().any(|h| h.node == id),
        "inserted node missing from a full-width scan"
    );
    let links_new = engine.recommend_links(&[id], 5, &[]).unwrap();
    assert_eq!(links_new[0].len(), 5);

    // Compaction folds the delta into a rebuilt base, same answers after.
    let before = engine.similar_nodes(&[id], 5).unwrap();
    assert_eq!(engine.compact(), 1);
    assert_eq!(engine.node_stats().delta, 0);
    assert_eq!(engine.node_stats().base, n + 1);
    let after = engine.similar_nodes(&[id], 5).unwrap();
    let ids = |hits: &Vec<Vec<pane_serve::Hit>>| -> Vec<usize> {
        hits[0].iter().map(|h| h.node).collect()
    };
    // HNSW rebuild may re-rank near-ties, but the newcomer's neighborhood
    // must stay substantially the same.
    let overlap = ids(&before)
        .iter()
        .filter(|v| ids(&after).contains(v))
        .count();
    assert!(
        overlap >= 3,
        "compaction changed the neighborhood: {overlap}/5"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_session_through_the_facade() {
    // The whole request/response cycle as a daemon would run it, driven
    // through in-memory stdio — no sockets, fully deterministic.
    let g = sbm(100, 9);
    let emb = Pane::new(cfg()).embed(&g).unwrap();
    let engine = RwLock::new(ServeEngine::build(emb, &IndexSpec::Flat, 2));
    let input = concat!(
        r#"{"op":"similar-nodes","nodes":[0,5],"k":4}"#,
        "\n",
        r#"{"op":"stats"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    );
    let mut out = Vec::new();
    let ended = serve_lines(&engine, input.as_bytes(), &mut out).unwrap();
    assert!(ended);
    let text = String::from_utf8(out).unwrap();
    for line in text.lines() {
        let v = pane_serve::parse(line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{line}");
    }
}
