//! Integration tests for the beyond-the-paper features: persistence,
//! top-k queries, warm re-embedding and the report card — exercised
//! together through the facade, the way a downstream user would.

use pane::pane_core::incremental::reembed_warm;
use pane::pane_core::{load_binary, save_binary, EmbeddingQuery};
use pane::pane_eval::{report_card, ReportOptions};
use pane::prelude::*;

fn graph() -> pane::pane_graph::AttributedGraph {
    DatasetZoo::CoraLike.generate_scaled(0.08, 11).graph
}

fn config() -> PaneConfig {
    PaneConfig::builder().dimension(16).seed(2).build()
}

#[test]
fn persist_then_query_pipeline() {
    let g = graph();
    let emb = Pane::new(config()).embed(&g).unwrap();

    let dir = std::env::temp_dir().join(format!("pane_ext_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("emb.bin");
    save_binary(&emb, &path).unwrap();
    let loaded = load_binary(&path).unwrap();

    // Queries over the loaded embedding equal queries over the original.
    let q1 = EmbeddingQuery::new(&emb);
    let q2 = EmbeddingQuery::new(&loaded);
    let a1 = q1.top_attributes(3, 5);
    let a2 = q2.top_attributes(3, 5);
    assert_eq!(
        a1.iter().map(|s| s.index).collect::<Vec<_>>(),
        a2.iter().map(|s| s.index).collect::<Vec<_>>()
    );
    let l1 = q1.recommend_links(3, 5, &[]);
    let l2 = q2.recommend_links(3, 5, &[]);
    assert_eq!(l1[0].index, l2[0].index);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_reembed_after_attribute_updates() {
    let g = graph();
    let emb = Pane::new(config()).embed(&g).unwrap();

    // Add a handful of new attribute associations (profile updates).
    let mut b = GraphBuilder::new(g.num_nodes(), g.num_attributes());
    for (i, j, _) in g.adjacency().iter() {
        b.add_edge(i, j);
    }
    for (v, r, w) in g.attributes().iter() {
        b.add_attribute(v, r, w);
    }
    for v in 0..10 {
        b.add_attribute(v, (v * 7) % g.num_attributes(), 1.0);
    }
    for v in 0..g.num_nodes() {
        for &l in g.labels_of(v) {
            b.add_label(v, l as usize);
        }
    }
    let g2 = b.build();

    let warm = reembed_warm(&config(), &g2, &emb, 2).unwrap();
    let cold = Pane::new(config()).embed(&g2).unwrap();
    assert!(
        warm.objective <= cold.objective * 1.1,
        "warm {} should track cold {}",
        warm.objective,
        cold.objective
    );
}

#[test]
fn report_card_through_facade() {
    let g = graph();
    let card = report_card(&g, &ReportOptions::default(), |residual| {
        Pane::new(config()).embed(residual).unwrap()
    });
    assert!(card.link.auc > 0.6, "link {}", card.link.auc);
    assert!(card.attribute.auc > 0.6, "attr {}", card.attribute.auc);
    assert!(card.classification.is_some());
}

#[test]
fn ranking_metrics_agree_with_query_order() {
    use pane::pane_eval::{ndcg_at_k, precision_at_k};
    let g = graph();
    let emb = Pane::new(config()).embed(&g).unwrap();
    let q = EmbeddingQuery::new(&emb);

    // Use a node's owned attributes as ground truth for its top-k list.
    let v = (0..g.num_nodes())
        .find(|&v| g.node_attributes(v).0.len() >= 2)
        .unwrap();
    let relevant: Vec<usize> = g.node_attributes(v).0.iter().map(|&r| r as usize).collect();
    let scores: Vec<f64> = (0..g.num_attributes())
        .map(|r| emb.attribute_score(v, r))
        .collect();

    let k = 10;
    let p_at_k = precision_at_k(&scores, &relevant, k);
    let top: Vec<usize> = q
        .top_attributes(v, k)
        .into_iter()
        .map(|s| s.index)
        .collect();
    let manual = top.iter().filter(|i| relevant.contains(i)).count() as f64 / k as f64;
    assert!(
        (p_at_k - manual).abs() < 1e-12,
        "metric {p_at_k} vs query-derived {manual}"
    );
    assert!(ndcg_at_k(&scores, &relevant, k) >= p_at_k - 1e-12);
}
