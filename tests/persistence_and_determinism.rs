//! Integration tests for persistence, determinism and scaling behavior.

use pane::pane_graph::io::{load_graph, save_graph};
use pane::prelude::*;

#[test]
fn graph_roundtrip_preserves_embedding() {
    let g = DatasetZoo::CiteseerLike.generate_scaled(0.03, 1).graph;
    let dir = std::env::temp_dir().join(format!("pane_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (e, a, l) = (dir.join("e.txt"), dir.join("a.txt"), dir.join("l.txt"));
    save_graph(&g, &e, &a, &l).unwrap();
    let g2 = load_graph(
        &e,
        Some(&a),
        Some(&l),
        Some(g.num_nodes()),
        Some(g.num_attributes()),
        false,
    )
    .unwrap();

    let cfg = PaneConfig::builder().dimension(16).seed(3).build();
    let emb1 = Pane::new(cfg.clone()).embed(&g).unwrap();
    let emb2 = Pane::new(cfg).embed(&g2).unwrap();
    assert_eq!(
        emb1.forward.data(),
        emb2.forward.data(),
        "embedding changed across I/O roundtrip"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn embeddings_deterministic_across_runs() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.04, 2).graph;
    let cfg = PaneConfig::builder()
        .dimension(16)
        .threads(3)
        .seed(9)
        .build();
    let a = Pane::new(cfg.clone()).embed(&g).unwrap();
    let b = Pane::new(cfg).embed(&g).unwrap();
    assert_eq!(a.forward.data(), b.forward.data());
    assert_eq!(a.backward.data(), b.backward.data());
    assert_eq!(a.attribute.data(), b.attribute.data());
}

/// Lemma 4.1 (PAPMI ≡ APMI) lifted to the whole pipeline: with a fixed
/// config seed, the serial and 4-way block-parallel paths must produce
/// **byte-identical** `X_f`, `X_b` and `Y` — not merely approximately equal
/// embeddings. Compared via `f64::to_bits` so that `-0.0`/`0.0` or NaN
/// payload differences cannot hide behind float `==`.
#[test]
fn thread_count_is_bitwise_invariant() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.05, 11).graph;
    let mk = |threads: usize| {
        let cfg = PaneConfig::builder()
            .dimension(16)
            .seed(42)
            .threads(threads)
            .build();
        Pane::new(cfg).embed(&g).unwrap()
    };
    let serial = mk(1);
    let parallel = mk(4);
    let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
    assert_eq!(
        bits(serial.forward.data()),
        bits(parallel.forward.data()),
        "X_f differs"
    );
    assert_eq!(
        bits(serial.backward.data()),
        bits(parallel.backward.data()),
        "X_b differs"
    );
    assert_eq!(
        bits(serial.attribute.data()),
        bits(parallel.attribute.data()),
        "Y differs"
    );
}

#[test]
fn different_seeds_differ_but_equal_quality() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.05, 3).graph;
    let mk = |seed| {
        Pane::new(PaneConfig::builder().dimension(16).seed(seed).build())
            .embed(&g)
            .unwrap()
    };
    let a = mk(1);
    let b = mk(2);
    assert_ne!(
        a.forward.data(),
        b.forward.data(),
        "different sketch seeds should differ"
    );
    let rel = (a.objective - b.objective).abs() / a.objective.max(1e-12);
    assert!(
        rel < 0.1,
        "objectives should be comparable: {} vs {}",
        a.objective,
        b.objective
    );
}

#[test]
fn objective_scales_with_graph_size_not_blowing_up() {
    // Scaling the graph 2x should roughly scale the objective with the
    // affinity mass, not explode — a smoke test for numerical stability.
    let small = DatasetZoo::CoraLike.generate_scaled(0.04, 4).graph;
    let large = DatasetZoo::CoraLike.generate_scaled(0.08, 4).graph;
    let cfg = PaneConfig::builder().dimension(16).seed(5).build();
    let es = Pane::new(cfg.clone()).embed(&small).unwrap();
    let el = Pane::new(cfg).embed(&large).unwrap();
    assert!(es.objective.is_finite() && el.objective.is_finite());
    assert!(
        el.objective < es.objective * 40.0,
        "objective exploded with size"
    );
}

#[test]
fn all_zoo_entries_embed_at_tiny_scale() {
    for zoo in DatasetZoo::ALL {
        let g = zoo.generate_scaled(0.015, 6).graph;
        let cfg = PaneConfig::builder()
            .dimension(8)
            .seed(1)
            .threads(2)
            .build();
        let emb = Pane::new(cfg)
            .embed(&g)
            .unwrap_or_else(|e| panic!("{}: {e}", zoo.name()));
        assert_eq!(emb.forward.rows(), g.num_nodes(), "{}", zoo.name());
        assert!(emb.objective.is_finite(), "{}", zoo.name());
    }
}

#[test]
fn timings_are_populated() {
    let g = DatasetZoo::CoraLike.generate_scaled(0.05, 7).graph;
    let emb = Pane::new(PaneConfig::builder().dimension(16).seed(0).build())
        .embed(&g)
        .unwrap();
    let t = emb.timings;
    assert!(t.affinity_secs >= 0.0 && t.init_secs >= 0.0 && t.ccd_secs >= 0.0);
    assert!(t.total_secs() >= t.ccd_secs);
}
