//! End-to-end durability test: the acceptance path of the `pane-store`
//! layer driven through the facade, the way a deployment would run it.
//!
//! Covers the three contract points: (1) inserts acknowledged before a
//! hard stop are served after a restart's WAL replay — bit-for-bit; (2)
//! a post-snapshot restart boots a fresh generation with an empty WAL
//! and identical query results; (3) sharded top-k over 2+ shards is
//! bit-identical to the unsharded exact scan on the same data.

use pane::prelude::*;
use pane_core::{grow_embedding, reembed_warm};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_loadgen::{
    generate_requests, run, BatchSpec, Endpoint, HandlerEndpoint, Mix, OpKind, RunPlan, Skew,
    WorkloadConfig,
};
use pane_serve::Hit;
use pane_store::ShardedStore;
use std::sync::{Arc, RwLock};

fn sbm(nodes: usize, seed: u64) -> AttributedGraph {
    generate_sbm(&SbmConfig {
        nodes,
        communities: 4,
        avg_out_degree: 6.0,
        attributes: 20,
        attrs_per_node: 4.0,
        seed,
        ..Default::default()
    })
}

fn cfg() -> PaneConfig {
    PaneConfig::builder().dimension(16).seed(13).build()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pane_store_e2e_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn kill_and_restart_preserves_acknowledged_inserts() {
    let dir = tmpdir("killrestart");

    // Offline: embed and initialize the durable store (what `pane embed`
    // + `pane store init` produce).
    let g0 = sbm(200, 3);
    let emb = Pane::new(cfg()).embed(&g0).unwrap();
    let n = g0.num_nodes();
    Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2).unwrap();

    // A node arrives through the pane-core incremental path: grow the
    // graph, warm re-embed offline, push only the new node's rows.
    let mut b = GraphBuilder::new(n + 1, g0.num_attributes());
    for (i, j, _) in g0.adjacency().iter() {
        b.add_edge(i, j);
    }
    for (v, r, w) in g0.attributes().iter() {
        b.add_attribute(v, r, w);
    }
    b.add_edge(n, 0);
    b.add_edge(0, n);
    b.add_attribute(n, 0, 1.0);
    let g1 = b.build();
    let warm = reembed_warm(&cfg(), &g1, &grow_embedding(&emb, 1), 2).unwrap();

    // Session 1: insert, read the answers, then hard-stop — the engine
    // is dropped mid-flight with no shutdown, compact, or snapshot.
    let (id, sim_before, links_before) = {
        let mut engine = ServeEngine::open(&dir, 2).unwrap();
        let id = engine
            .insert(warm.forward.row(n), warm.backward.row(n))
            .unwrap();
        assert_eq!(id, n);
        let sim = engine.similar_nodes(&[id, 0, 17], 8).unwrap();
        let links = engine.recommend_links(&[id, 5], 6, &[0]).unwrap();
        (id, sim, links)
    };

    // Session 2: WAL replay restores the insert; every answer involving
    // the recovered node is bit-identical to the pre-kill session.
    let mut engine = ServeEngine::open(&dir, 2).unwrap();
    let report = engine.status().store.unwrap();
    assert_eq!(report.replayed, 1);
    assert_eq!(engine.num_nodes(), n + 1);
    assert_eq!(engine.similar_nodes(&[id, 0, 17], 8).unwrap(), sim_before);
    assert_eq!(
        engine.recommend_links(&[id, 5], 6, &[0]).unwrap(),
        links_before
    );

    // Snapshot: generation 2 commits, the WAL empties, answers hold.
    let out = engine.snapshot().unwrap();
    assert_eq!((out.generation, out.folded), (2, 1));
    drop(engine); // another hard stop

    // Session 3: boots from the new generation, replays nothing, and
    // serves identical results.
    let engine = ServeEngine::open(&dir, 2).unwrap();
    let report = engine.status().store.unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(report.wal_records, 0);
    assert_eq!(report.replayed, 0);
    assert_eq!(engine.similar_nodes(&[id, 0, 17], 8).unwrap(), sim_before);
    assert_eq!(
        engine.recommend_links(&[id, 5], 6, &[0]).unwrap(),
        links_before
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_top_k_is_bit_identical_to_the_unsharded_exact_scan() {
    let root = tmpdir("sharded");
    let g = sbm(150, 9);
    let emb = Pane::new(cfg()).embed(&g).unwrap();

    // Ground truth: the exact in-process query layer and the unsharded
    // flat daemon engine (themselves pinned equal in serve's tests).
    let exact = EmbeddingQuery::new(&emb);
    let unsharded = ServeEngine::build(emb.clone(), &IndexSpec::Flat, 2);

    for shards in [2usize, 3] {
        std::fs::remove_dir_all(&root).ok();
        ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, shards, 2).unwrap();
        let engine = ShardedEngine::open(&root, 2).unwrap();
        assert_eq!(engine.num_shards(), shards);
        let nodes: Vec<usize> = (0..150).step_by(11).collect();
        let sim = engine.similar_nodes(&nodes, 10).unwrap();
        let links = engine.recommend_links(&nodes, 7, &[2, 40]).unwrap();
        assert_eq!(
            sim,
            unsharded.similar_nodes(&nodes, 10).unwrap(),
            "{shards}-way similar-nodes diverged from the unsharded engine"
        );
        assert_eq!(
            links,
            unsharded.recommend_links(&nodes, 7, &[2, 40]).unwrap(),
            "{shards}-way recommend-links diverged from the unsharded engine"
        );
        // And against the original query layer — three implementations,
        // one answer.
        for (qi, &v) in nodes.iter().enumerate() {
            let want: Vec<Hit> = exact
                .similar_nodes(v, 10)
                .into_iter()
                .map(|s| Hit {
                    node: s.index,
                    score: s.score,
                })
                .collect();
            assert_eq!(sim[qi], want, "query node {v}");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sharded_inserts_survive_restart_and_snapshot() {
    let root = tmpdir("sharded_durable");
    let g = sbm(90, 5);
    let emb = Pane::new(cfg()).embed(&g).unwrap();
    let n = g.num_nodes();
    let k2 = emb.forward.cols();
    ShardedStore::init(&root, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2, 1).unwrap();

    let probe: Vec<f64> = (0..k2).map(|i| 0.03 * (i + 1) as f64).collect();
    let before = {
        let mut engine = ShardedEngine::open(&root, 1).unwrap();
        for i in 0..3 {
            assert_eq!(engine.insert(&probe, &probe).unwrap(), n + i);
        }
        engine.similar_nodes(&[n, n + 2], 6).unwrap()
    }; // hard stop

    let mut engine = ShardedEngine::open(&root, 1).unwrap();
    assert_eq!(engine.num_nodes(), n + 3);
    assert_eq!(engine.status().store.unwrap().replayed, 3);
    assert_eq!(engine.similar_nodes(&[n, n + 2], 6).unwrap(), before);

    let out = engine.snapshot().unwrap();
    assert_eq!(out.folded, 3);
    drop(engine);
    let engine = ShardedEngine::open(&root, 1).unwrap();
    let report = engine.status().store.unwrap();
    assert_eq!((report.wal_records, report.replayed), (0, 0));
    assert_eq!(engine.similar_nodes(&[n, n + 2], 6).unwrap(), before);
    std::fs::remove_dir_all(&root).ok();
}

/// Concurrency e2e (PR 9): the open-loop load generator drives a
/// store-backed engine through four concurrent connections with a mixed
/// insert/query stream at a fixed seed, then the process hard-stops.
/// Every acknowledged insert must come back through WAL replay, and
/// probe queries must answer bit-identically across the restart.
#[test]
fn open_loop_mixed_load_survives_a_hard_restart() {
    let dir = tmpdir("loadgen_mixed");
    let g = sbm(120, 11);
    let emb = Pane::new(cfg()).embed(&g).unwrap();
    let n = g.num_nodes();
    let half_dim = emb.forward.cols();
    Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2).unwrap();

    let wl = WorkloadConfig {
        mix: Mix {
            similar: 70,
            links: 10,
            insert: 20,
        },
        skew: Skew::Zipf(1.1),
        batch: BatchSpec { min: 1, max: 4 },
        k: 6,
        seed: 4242,
    };
    let requests = generate_requests(&wl, n, half_dim, 300);
    // The acceptance pin, exercised on the e2e path too: same seed +
    // config ⇒ the identical request sequence.
    assert_eq!(requests, generate_requests(&wl, n, half_dim, 300));

    // Session 1: open-loop run against the live engine, then hard stop —
    // no shutdown, no snapshot; acknowledged inserts live in the WAL.
    let (acked, probe, sim_before, links_before) = {
        let engine = Arc::new(RwLock::new(ServeEngine::open(&dir, 2).unwrap()));
        let handler = Arc::clone(&engine);
        let connect =
            move || Ok(Box::new(HandlerEndpoint::new(Arc::clone(&handler))) as Box<dyn Endpoint>);
        let plan = RunPlan {
            qps: 3000.0,
            connections: 4,
        };
        let report = run(&plan, &requests, &connect).unwrap();
        assert_eq!(report.sent, 300);
        assert_eq!(
            report.errors,
            0,
            "in-process mixed load must not fail: {:?}",
            report
                .outcomes
                .iter()
                .find(|o| o.error.is_some())
                .map(|o| (&o.index, &o.error))
        );
        // Protocol desync check: every response echoes its request's op.
        for o in &report.outcomes {
            assert_eq!(
                o.resp_op.as_deref(),
                Some(o.op.wire_name()),
                "request {} got an answer for a different op",
                o.index
            );
        }
        let acked = report
            .outcomes
            .iter()
            .filter(|o| o.ok && o.op == OpKind::Insert)
            .count();
        assert!(acked > 0, "a q70/l10/i20 mix of 300 must insert");
        let eng = engine.read().unwrap();
        assert_eq!(eng.num_nodes(), n + acked);
        // Probe queries spanning base nodes and load-inserted nodes.
        let probe = vec![0, 7, n, n + acked - 1];
        let sim = eng.similar_nodes(&probe, 8).unwrap();
        let links = eng.recommend_links(&probe, 5, &[3]).unwrap();
        (acked, probe, sim, links)
    };

    // Session 2: WAL replay restores exactly the acknowledged inserts,
    // and the probe answers are bit-identical.
    let engine = ServeEngine::open(&dir, 2).unwrap();
    let store = engine.status().store.unwrap();
    assert_eq!(store.replayed, acked, "replay must equal acked inserts");
    assert_eq!(engine.num_nodes(), n + acked);
    assert_eq!(engine.similar_nodes(&probe, 8).unwrap(), sim_before);
    assert_eq!(
        engine.recommend_links(&probe, 5, &[3]).unwrap(),
        links_before
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance path of the columnar migration (PR 8's tentpole): a store
/// initialized with legacy `PANEEMB1`/`PANEIDX1` artifacts serves, is
/// migrated in place to `PANECOL1`, and serves **bit-identical**
/// similar-nodes and recommend-links answers afterwards — including an
/// insert acknowledged before the migration, carried across it by the
/// untouched WAL.
#[test]
fn migrate_then_serve_is_bit_identical_to_legacy() {
    use pane_store::ArtifactFormat;

    let dir = tmpdir("migrate_identical");
    let g = sbm(180, 21);
    let emb = Pane::new(cfg()).embed(&g).unwrap();
    let n = g.num_nodes();
    let k2 = emb.forward.cols();
    Store::init_with_format(
        &dir,
        &emb,
        &IndexSpec::Flat,
        &IndexSpec::Flat,
        2,
        ArtifactFormat::Legacy,
    )
    .unwrap();

    // Session 1 (legacy artifacts): insert one node, record the answers.
    let nodes: Vec<usize> = (0..n).step_by(13).chain([n]).collect();
    let probe: Vec<f64> = (0..k2).map(|i| 0.05 * (i + 1) as f64).collect();
    let (sim_before, links_before) = {
        let mut engine = ServeEngine::open(&dir, 2).unwrap();
        assert_eq!(engine.status().store.unwrap().format, "legacy");
        assert_eq!(engine.insert(&probe, &probe).unwrap(), n);
        (
            engine.similar_nodes(&nodes, 9).unwrap(),
            engine.recommend_links(&nodes, 7, &[1, 30]).unwrap(),
        )
    }; // hard stop — the insert lives only in the WAL

    // Migrate in place: container bytes change, nothing logical does.
    let report = pane_store::migrate(&dir).unwrap();
    assert_eq!(report.from_format, ArtifactFormat::Legacy);
    assert!(report.migrated);
    let status = pane_store::read_status(&dir).unwrap();
    assert_eq!(status.format, ArtifactFormat::Columnar);
    assert_eq!(status.base_nodes, n, "migration must not fold the WAL");
    assert_eq!(status.wal_records, 1, "migration must not touch the WAL");

    // Session 2 (columnar artifacts): every answer is bit-identical.
    let mut engine = ServeEngine::open(&dir, 2).unwrap();
    let store = engine.status().store.unwrap();
    assert_eq!(store.format, "columnar");
    assert_eq!(store.replayed, 1, "the pre-migration insert survived");
    assert_eq!(engine.similar_nodes(&nodes, 9).unwrap(), sim_before);
    assert_eq!(
        engine.recommend_links(&nodes, 7, &[1, 30]).unwrap(),
        links_before
    );

    // Snapshot on top of the migrated store still works and stays
    // columnar; the answers hold across one more restart.
    let out = engine.snapshot().unwrap();
    assert_eq!(out.folded, 1);
    drop(engine);
    let engine = ServeEngine::open(&dir, 2).unwrap();
    assert_eq!(engine.status().store.unwrap().format, "columnar");
    assert_eq!(engine.similar_nodes(&nodes, 9).unwrap(), sim_before);
    assert_eq!(
        engine.recommend_links(&nodes, 7, &[1, 30]).unwrap(),
        links_before
    );
    std::fs::remove_dir_all(&dir).ok();
}
