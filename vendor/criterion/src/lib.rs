//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` bench-target shape
//! compiling and runnable without network access, with a small statistics
//! layer instead of criterion's full machinery: every benchmark runs one
//! untimed **warmup** pass, then `sample_size` timed passes, and reports
//! the **median** with the **median absolute deviation** (MAD) — robust
//! against the one-off outliers (page faults, frequency ramps) that make
//! best-of-N or mean-of-N wall-clock numbers untrustworthy.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier, matching criterion's.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 5;
/// Upper bound on samples — the shim favors quick smoke runs.
const MAX_SAMPLES: usize = 25;

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take (the shim clamps to at most
    /// 25; a separate warmup pass is always added).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Median of `xs` (which must be sorted); 0.0 when empty.
fn median_sorted(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => 0.5 * (xs[n / 2 - 1] + xs[n / 2]),
    }
}

/// `(median, median-absolute-deviation)` of the samples.
fn median_mad(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_sorted(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (med, median_sorted(&dev))
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup pass: touches caches and lazy init; its timings are discarded.
    let mut warm = Bencher {
        samples: Vec::new(),
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {label}: (no iterations)");
    } else {
        let (med, mad) = median_mad(&b.samples);
        println!(
            "bench {label}: median {med:.6} s ± {mad:.6} s (MAD, n={})",
            b.samples.len()
        );
    }
}

/// Times closures; records every observed duration for the statistics.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed().as_secs_f64());
    }

    /// Times `routine` on a fresh value from `setup`, excluding setup time.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed().as_secs_f64());
    }
}

/// Batch sizing hint; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display format.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput);
        });
        g.finish();
    }

    #[test]
    fn group_machinery_runs() {
        let mut c = Criterion::default();
        target(&mut c);
        c.bench_function("lone", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("k", 8).0, "k/8");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }

    #[test]
    fn median_and_mad_are_robust() {
        // Odd count: exact middle; the 100.0 outlier moves neither stat.
        let (med, mad) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(med, 3.0);
        assert_eq!(mad, 1.0);
        // Even count: midpoint average.
        let (med, mad) = median_mad(&[1.0, 3.0]);
        assert_eq!(med, 2.0);
        assert_eq!(mad, 1.0);
        // Constant samples: zero spread.
        let (med, mad) = median_mad(&[5.0, 5.0, 5.0]);
        assert_eq!(med, 5.0);
        assert_eq!(mad, 0.0);
    }

    #[test]
    fn warmup_pass_is_not_counted() {
        let mut calls = 0;
        run_one("", "count", 3, &mut |b| {
            calls += 1;
            b.iter(|| black_box(calls));
        });
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
