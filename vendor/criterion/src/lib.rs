//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` bench-target shape
//! compiling and runnable without network access. Each benchmark runs its
//! routine a handful of times and prints the best observed wall-clock time
//! — enough to smoke-test the bench targets and eyeball regressions, with
//! none of criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard optimization barrier, matching criterion's.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 3,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 3, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples to take (the shim clamps to at most 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 5);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        best_secs: f64::INFINITY,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.best_secs.is_finite() {
        println!("bench {label}: {:.6} s", b.best_secs);
    } else {
        println!("bench {label}: (no iterations)");
    }
}

/// Times closures; retains the best (minimum) observed duration.
pub struct Bencher {
    best_secs: f64,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.record(t0.elapsed().as_secs_f64());
    }

    /// Times `routine` on a fresh value from `setup`, excluding setup time.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.record(t0.elapsed().as_secs_f64());
    }

    fn record(&mut self, secs: f64) {
        if secs < self.best_secs {
            self.best_secs = secs;
        }
    }
}

/// Batch sizing hint; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display format.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput);
        });
        g.finish();
    }

    #[test]
    fn group_machinery_runs() {
        let mut c = Criterion::default();
        target(&mut c);
        c.bench_function("lone", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("k", 8).0, "k/8");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
