//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the `criterion_group!` / `criterion_main!` bench-target shape
//! compiling and runnable without network access, with a small statistics
//! layer instead of criterion's full machinery: every benchmark runs one
//! untimed **warmup** pass, then `sample_size` timed passes, and reports
//! the **median** with the **median absolute deviation** (MAD) — robust
//! against the one-off outliers (page faults, frequency ramps) that make
//! best-of-N or mean-of-N wall-clock numbers untrustworthy.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Re-export of the standard optimization barrier, matching criterion's.
pub use std::hint::black_box;

/// One finished benchmark: the statistics behind its printed line.
struct Recorded {
    label: String,
    median_s: f64,
    mad_s: f64,
    samples: usize,
}

/// Finished benchmarks plus free-form [`note`] context entries.
type Collected = (Vec<Recorded>, Vec<(String, String)>);

/// Process-wide results collector feeding [`write_json_report`].
fn collector() -> &'static Mutex<Collected> {
    static C: OnceLock<Mutex<Collected>> = OnceLock::new();
    C.get_or_init(|| Mutex::new((Vec::new(), Vec::new())))
}

/// Records a machine-readable context entry (dataset size, parameter
/// choices, derived ratios) alongside the timing results in the JSON
/// report. Later notes with the same key override earlier ones.
pub fn note(key: impl Display, value: impl Display) {
    let mut c = collector().lock().unwrap();
    let key = key.to_string();
    c.1.retain(|(k, _)| *k != key);
    c.1.push((key, value.to_string()));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders every benchmark recorded so far (plus the [`note`] entries)
/// as one JSON object: `{"results":[…],"notes":{…}}`.
pub fn render_json() -> String {
    let c = collector().lock().unwrap();
    let mut out = String::from("{\"results\":[");
    for (i, r) in c.0.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"median_s\":{},\"mad_s\":{},\"samples\":{}}}",
            json_escape(&r.label),
            json_num(r.median_s),
            json_num(r.mad_s),
            r.samples
        ));
    }
    out.push_str("],\"notes\":{");
    for (i, (k, v)) in c.1.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push_str("}}");
    out
}

/// Writes the JSON report to `path` (trailing newline included).
pub fn write_json_to(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_json() + "\n")
}

/// Writes the JSON report to the path named by the `PANE_BENCH_JSON`
/// environment variable, if set. Called by the `criterion_main!`
/// expansion after all groups finish, so every bench binary emits a
/// machine-readable artifact when asked — no per-bench code needed.
pub fn write_json_report() {
    if let Ok(path) = std::env::var("PANE_BENCH_JSON") {
        if path.is_empty() {
            return;
        }
        let path = std::path::PathBuf::from(path);
        if let Err(e) = write_json_to(&path) {
            eprintln!("cannot write bench report {}: {e}", path.display());
        } else {
            println!("wrote bench report {}", path.display());
        }
    }
}

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 5;
/// Upper bound on samples — the shim favors quick smoke runs.
const MAX_SAMPLES: usize = 25;

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), DEFAULT_SAMPLES, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to take (the shim clamps to at most
    /// 25; a separate warmup pass is always added).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with an input value, criterion-style.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Median of `xs` (which must be sorted); 0.0 when empty.
fn median_sorted(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => 0.5 * (xs[n / 2 - 1] + xs[n / 2]),
    }
}

/// `(median, median-absolute-deviation)` of the samples.
fn median_mad(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let med = median_sorted(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(f64::total_cmp);
    (med, median_sorted(&dev))
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warmup pass: touches caches and lazy init; its timings are discarded.
    let mut warm = Bencher {
        samples: Vec::new(),
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {label}: (no iterations)");
    } else {
        let (med, mad) = median_mad(&b.samples);
        println!(
            "bench {label}: median {med:.6} s ± {mad:.6} s (MAD, n={})",
            b.samples.len()
        );
        collector().lock().unwrap().0.push(Recorded {
            label,
            median_s: med,
            mad_s: mad,
            samples: b.samples.len(),
        });
    }
}

/// Times closures; records every observed duration for the statistics.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed().as_secs_f64());
    }

    /// Times `routine` on a fresh value from `setup`, excluding setup time.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed().as_secs_f64());
    }
}

/// Batch sizing hint; ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display format.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups (bench targets set
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput);
        });
        g.finish();
    }

    #[test]
    fn group_machinery_runs() {
        let mut c = Criterion::default();
        target(&mut c);
        c.bench_function("lone", |b| b.iter(|| black_box(3)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("k", 8).0, "k/8");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }

    #[test]
    fn median_and_mad_are_robust() {
        // Odd count: exact middle; the 100.0 outlier moves neither stat.
        let (med, mad) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(med, 3.0);
        assert_eq!(mad, 1.0);
        // Even count: midpoint average.
        let (med, mad) = median_mad(&[1.0, 3.0]);
        assert_eq!(med, 2.0);
        assert_eq!(mad, 1.0);
        // Constant samples: zero spread.
        let (med, mad) = median_mad(&[5.0, 5.0, 5.0]);
        assert_eq!(med, 5.0);
        assert_eq!(mad, 0.0);
    }

    #[test]
    fn json_report_collects_results_and_notes() {
        run_one("json", "case", 2, &mut |b| b.iter(|| black_box(1)));
        note("edges", 123);
        note("edges", 456); // same key: later note wins
        let json = render_json();
        assert!(json.contains("\"label\":\"json/case\""), "{json}");
        assert!(json.contains("\"samples\":2"), "{json}");
        assert!(json.contains("\"edges\":\"456\""), "{json}");
        assert!(!json.contains("\"edges\":\"123\""), "{json}");

        let path = std::env::temp_dir().join(format!("pane_bench_json_{}", std::process::id()));
        write_json_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(
            back.starts_with('{') && back.trim_end().ends_with('}'),
            "{back}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(0.25), "0.25");
    }

    #[test]
    fn warmup_pass_is_not_counted() {
        let mut calls = 0;
        run_one("", "count", 3, &mut |b| {
            calls += 1;
            b.iter(|| black_box(calls));
        });
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
