//! Offline, deterministic stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, [`prop_assert!`] /
//! [`prop_assert_eq!`], [`ProptestConfig::with_cases`], range strategies
//! over integers and `f64`, and [`collection::vec`].
//!
//! Differences from the real crate, by design:
//!
//! * case generation is **deterministic** — the RNG is seeded from the
//!   test function's name, so every run explores the same inputs;
//! * there is **no shrinking** — on failure the offending inputs are
//!   printed and the panic propagates as-is;
//! * strategies are sampled directly (no `prop_map`/`prop_flat_map`
//!   combinators), which covers every usage in this repository.

use std::ops::Range;

/// Per-`proptest!`-block configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A source of pseudo-random values for strategy sampling.
pub mod test_runner {
    /// SplitMix64 stream seeded from the test name; deterministic per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` on `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value. `case` is the 0-based case index, letting
    /// strategies bias early cases toward range boundaries.
    fn sample(&self, rng: &mut TestRng, case: u32) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng, case: u32) -> $t {
                assert!(self.start < self.end, "proptest: empty range strategy");
                // Hit both boundaries early, then sample uniformly.
                if case == 0 {
                    return self.start;
                }
                if case == 1 {
                    return self.end - 1;
                }
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng, _case: u32) -> f64 {
        assert!(self.start < self.end, "proptest: empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Collection strategies; only `vec` is used in this workspace.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// is uniform over `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng, case: u32) -> Vec<S::Value> {
            let len = self.size.sample(rng, case);
            (0..len).map(|_| self.elem.sample(rng, u32::MAX)).collect()
        }
    }
}

/// The usual glob import: macros, config, and the [`Strategy`] trait.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property; panics with the formatted
/// message (the shim has no shrinking, so this is a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng, __case);)*
                    let __inputs = format!("{:?}", ( $(&$arg,)* ));
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest failure in {} (case {}/{}): inputs {}",
                            stringify!($name), __case + 1, __cfg.cases, __inputs,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_respected(a in 3usize..9, b in -5i64..5, x in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn boundaries_hit_first() {
        let mut rng = crate::test_runner::TestRng::deterministic("b");
        let s = 5usize..11;
        assert_eq!(s.sample(&mut rng, 0), 5);
        assert_eq!(s.sample(&mut rng, 1), 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::deterministic("x");
            (0..4)
                .map(|c| (0u64..1000).sample(&mut rng, c + 2))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
