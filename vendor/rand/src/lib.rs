//! Offline, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses (see
//! `vendor/README.md`): [`Rng`] with `gen::<f64>()`, `gen_range`,
//! `gen_bool`; [`SeedableRng::seed_from_u64`]; and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is xoshiro256\*\* seeded through SplitMix64 —
//! a different stream from the real `StdRng` (ChaCha12), but every test
//! in this repository asserts properties rather than literal streams.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` is uniform on `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range; panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one sample using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one sample; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64 => u64, i32 => u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let k = r.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = r.gen_range(0usize..=4);
            assert!(k <= 4);
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
