//! Building a graph from raw categorical data, saving/loading it, and
//! re-embedding after an update (warm workflow for downstream users).
//!
//! ```sh
//! cargo run --release --example custom_graph_io
//! ```

use pane::pane_graph::encode::{one_hot_encode, ColumnKind, RawValue};
use pane::pane_graph::io::{load_graph, save_graph};
use pane::prelude::*;

fn cat(s: &str) -> RawValue {
    RawValue::Category(s.to_string())
}

fn main() {
    // 1. Raw per-node attribute table (the paper's §2.1 one-hot step).
    let table = vec![
        vec![cat("databases"), RawValue::Number(12.0)],
        vec![cat("systems"), RawValue::Number(3.0)],
        vec![cat("databases"), RawValue::Number(7.0)],
        vec![cat("ml"), RawValue::Missing],
        vec![cat("ml"), RawValue::Number(1.0)],
        vec![cat("systems"), RawValue::Number(5.0)],
    ];
    let encoded = one_hot_encode(
        &["area", "citations"],
        &[ColumnKind::Categorical, ColumnKind::Numeric],
        &table,
    );
    println!(
        "encoded {} attributes: {:?}",
        encoded.num_attributes, encoded.attribute_names
    );

    // 2. Assemble the attributed graph.
    let mut builder = GraphBuilder::new(6, encoded.num_attributes);
    for (v, r, w) in &encoded.associations {
        builder.add_attribute(*v, *r, *w);
    }
    for (s, t) in [
        (0, 2),
        (2, 0),
        (1, 5),
        (5, 1),
        (3, 4),
        (4, 3),
        (0, 1),
        (2, 3),
    ] {
        builder.add_edge(s, t);
    }
    let graph = builder.build();
    println!("graph: {}", graph.stats());

    // 3. Persist and reload through the text formats.
    let dir = std::env::temp_dir().join("pane_example_io");
    std::fs::create_dir_all(&dir).unwrap();
    let (e, a, l) = (
        dir.join("edges.txt"),
        dir.join("attrs.txt"),
        dir.join("labels.txt"),
    );
    save_graph(&graph, &e, &a, &l).expect("save");
    let reloaded = load_graph(
        &e,
        Some(&a),
        Some(&l),
        Some(6),
        Some(encoded.num_attributes),
        false,
    )
    .expect("load");
    assert_eq!(reloaded.num_edges(), graph.num_edges());
    println!("round-tripped through {}", dir.display());

    // 4. Embed.
    let config = PaneConfig::builder().dimension(4).seed(0).build();
    let emb = Pane::new(config).embed(&reloaded).expect("embed");
    println!("objective = {:.4}", emb.objective);
    for v in 0..6 {
        let scores: Vec<String> = (0..encoded.num_attributes)
            .map(|r| {
                format!(
                    "{}={:.2}",
                    encoded.attribute_names[r],
                    emb.attribute_score(v, r)
                )
            })
            .collect();
        println!("v{v}: {}", scores.join("  "));
    }
}
