//! Quickstart: embed a small attributed graph and inspect the outputs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pane::prelude::*;

fn main() {
    // 1. Build (or load) an attributed, directed graph. Here: a synthetic
    //    citation-network analogue with 7 communities.
    let dataset = DatasetZoo::CoraLike.generate_scaled(0.25, 7);
    let graph = &dataset.graph;
    println!("graph: {}", graph.stats());

    // 2. Configure PANE. The paper's defaults are k = 128, alpha = 0.5,
    //    eps = 0.015; we shrink k for this small example.
    let config = PaneConfig::builder()
        .dimension(32)
        .alpha(0.5)
        .error_threshold(0.015)
        .threads(2) // > 1 switches to the parallel algorithms (Algs. 5-8)
        .seed(42)
        .build();

    // 3. Embed.
    let embedding = Pane::new(config)
        .embed(graph)
        .expect("embedding should succeed");
    println!(
        "embedded in {:.2}s (affinity {:.2}s, init {:.2}s, ccd {:.2}s), objective {:.1}",
        embedding.timings.total_secs(),
        embedding.timings.affinity_secs,
        embedding.timings.init_secs,
        embedding.timings.ccd_secs,
        embedding.objective,
    );
    println!(
        "shapes: X_f {:?}, X_b {:?}, Y {:?}",
        embedding.forward.shape(),
        embedding.backward.shape(),
        embedding.attribute.shape()
    );

    // 4. Use the embeddings.
    // 4a. Node-attribute affinity (Eq. 21): does node 0 carry attribute 3?
    println!(
        "attribute_score(v0, r3) = {:.3}",
        embedding.attribute_score(0, 3)
    );

    // 4b. Direction-aware link scores (Eq. 22).
    let gram = embedding.link_gram();
    let (neighbors, _) = graph.out_neighbors(0);
    if let Some(&nb) = neighbors.first() {
        let to_neighbor = embedding.link_score_with(&gram, 0, nb as usize);
        let far = (graph.num_nodes() / 2 + 1).min(graph.num_nodes() - 1);
        let to_far = embedding.link_score_with(&gram, 0, far);
        println!("link score to a real neighbor: {to_neighbor:.3}, to a random node: {to_far:.3}");
    }

    // 4c. Classifier features: [X_f ‖ X_b], halves normalized.
    let feats = embedding.classifier_features(0);
    println!("classifier feature dim = {}", feats.len());
}
