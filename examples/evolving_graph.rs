//! Warm re-embedding of an evolving graph — the paper's §7 future-work
//! scenario ("time-varying graphs where attributes and node connections
//! change over time"), implemented via `pane_core::incremental`.
//!
//! A stream of edge batches arrives; after each batch we compare a full
//! cold re-embedding against a warm restart from the previous embedding
//! with just 2 CCD sweeps.
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use pane::pane_core::incremental::reembed_warm;
use pane::prelude::*;
use std::time::Instant;

fn main() {
    // Initial snapshot.
    let base = DatasetZoo::TWeiboLike.generate_scaled(0.04, 3).graph;
    println!("snapshot 0: {}", base.stats());

    let config = PaneConfig::builder()
        .dimension(32)
        .threads(2)
        .seed(5)
        .build();
    let t0 = Instant::now();
    let mut current = Pane::new(config.clone()).embed(&base).expect("embed");
    println!(
        "cold embed: {:.2}s (objective {:.3e})\n",
        t0.elapsed().as_secs_f64(),
        current.objective
    );

    // Simulate 3 update batches: each rewires ~3% of the edges.
    let mut graph = base;
    for step in 1..=3 {
        graph = rewire(&graph, step as u64 * 1000 + 7, 0.03);
        println!("snapshot {step}: {}", graph.stats());

        let t_cold = Instant::now();
        let cold = Pane::new(config.clone()).embed(&graph).expect("embed");
        let cold_secs = t_cold.elapsed().as_secs_f64();

        let t_warm = Instant::now();
        let warm = reembed_warm(&config, &graph, &current, 2).expect("warm re-embed");
        let warm_secs = t_warm.elapsed().as_secs_f64();

        println!(
            "  cold: {cold_secs:.2}s -> objective {:.3e}\n  warm: {warm_secs:.2}s -> objective {:.3e}  ({:.1}x faster, {:+.1}% objective)",
            cold.objective,
            warm.objective,
            cold_secs / warm_secs,
            100.0 * (warm.objective - cold.objective) / cold.objective,
        );
        current = warm;
    }
}

/// Rewires a fraction of the edges to random targets (seeded).
fn rewire(g: &AttributedGraph, seed: u64, frac: f64) -> AttributedGraph {
    let n = g.num_nodes();
    let mut state = seed | 1;
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = GraphBuilder::new(n, g.num_attributes());
    let threshold = (frac * u32::MAX as f64) as usize;
    for (i, j, _) in g.adjacency().iter() {
        if rand() % (u32::MAX as usize) < threshold {
            b.add_edge(i, rand() % n);
        } else {
            b.add_edge(i, j);
        }
    }
    for (v, r, w) in g.attributes().iter() {
        b.add_attribute(v, r, w);
    }
    for v in 0..n {
        for &l in g.labels_of(v) {
            b.add_label(v, l as usize);
        }
    }
    b.build()
}
