//! Scalability demo: PANE's running time grows linearly in the graph size
//! (the paper's core claim — `O((md + ndk)·log(1/ε))` total work), and the
//! parallel algorithms partition that work across `nb` threads.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use pane::prelude::*;
use std::time::Instant;

fn main() {
    println!("scale   nodes    edges      attrs  embed-time  time/(m + n·d)");
    let mut per_unit = Vec::new();
    for scale in [0.05, 0.1, 0.2, 0.4] {
        let ds = DatasetZoo::MagLike.generate_scaled(scale, 17);
        let g = &ds.graph;
        let config = PaneConfig::builder()
            .dimension(32)
            .alpha(0.5)
            .error_threshold(0.015)
            .threads(4)
            .seed(1)
            .build();
        let t0 = Instant::now();
        let emb = Pane::new(config).embed(g).expect("embed");
        let secs = t0.elapsed().as_secs_f64();
        let work = g.num_edges() as f64 + g.num_nodes() as f64 * g.num_attributes() as f64;
        per_unit.push(secs / work);
        println!(
            "{scale:<6}  {:<7}  {:<9}  {:<5}  {secs:>8.2}s  {:.3e}",
            g.num_nodes(),
            g.num_edges(),
            g.num_attributes(),
            secs / work,
        );
        // Keep the last embedding alive briefly so the compiler cannot
        // elide the work.
        assert!(emb.objective.is_finite());
    }
    let spread = per_unit.iter().cloned().fold(f64::MIN, f64::max)
        / per_unit.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\ntime per unit of work varies by only {spread:.1}x across an 8x size range\n\
         (constant per-unit cost = linear scaling, as §3.3/§4.3 predict)"
    );
}
