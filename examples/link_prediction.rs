//! Direction-aware link prediction on a social-network analogue, comparing
//! PANE against the topology-only and attribute-only baselines — a
//! miniature of the paper's Table 5.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use pane::pane_baselines::{AttrSvd, NrpLite, TopoSvd};
use pane::pane_eval::scoring::PaneScorer;
use pane::pane_eval::split::split_edges;
use pane::pane_eval::tasks::link_pred::{best_of_four, evaluate_link_scorer};
use pane::prelude::*;

fn main() {
    // A TWeibo-like directed follower graph (scaled down).
    let dataset = DatasetZoo::TWeiboLike.generate_scaled(0.05, 5);
    let graph = &dataset.graph;
    println!("graph: {}", graph.stats());

    // Remove 30% of edges; sample equal negatives.
    let split = split_edges(graph, 0.3, 13);
    println!(
        "test: {} removed edges + {} negatives",
        split.test_edges.len(),
        split.negative_edges.len()
    );
    let symmetric = graph.is_undirected();

    // PANE: Eq. (22) scores.
    let config = PaneConfig::builder()
        .dimension(64)
        .threads(2)
        .seed(2)
        .build();
    let embedding = Pane::new(config).embed(&split.residual).expect("embed");
    let pane_result = evaluate_link_scorer(&PaneScorer::new(&embedding), &split, symmetric);
    println!("PANE             : {pane_result}");

    // NRP-like (topology, direction-aware).
    let nrp = NrpLite::fit(&split.residual, 64, 0.5, 6, 2);
    let nrp_result = evaluate_link_scorer(&nrp, &split, symmetric);
    println!("NRP-like         : {nrp_result}");

    // Topology-only and attribute-only SVD baselines (best of 4 scorers).
    let topo = TopoSvd::fit(&split.residual, 64, 0.5, 6, 2);
    let (topo_result, topo_via) = best_of_four(&topo.x, &split, true, 2);
    println!("TopoSVD          : {topo_result} (via {topo_via})");

    let attr = AttrSvd::fit(&split.residual, 64, 2);
    let (attr_result, attr_via) = best_of_four(&attr.x, &split, true, 2);
    println!("AttrSVD          : {attr_result} (via {attr_via})");

    println!(
        "\nPANE combines both signals with edge direction; expected ordering:\n\
         PANE >= max(topology-only, attribute-only). Got {:.3} vs {:.3}.",
        pane_result.auc,
        topo_result.auc.max(attr_result.auc)
    );
}
