//! Node classification on a multi-label social graph (Figure 2 in
//! miniature): train linear one-vs-rest classifiers on `[X_f ‖ X_b]`.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use pane::pane_eval::scoring::PaneScorer;
use pane::pane_eval::tasks::node_class::{classification_sweep, NodeClassOptions};
use pane::prelude::*;

fn main() {
    // A Facebook-like undirected ego-network graph with circle labels.
    let dataset = DatasetZoo::FacebookLike.generate_scaled(0.4, 3);
    let graph = &dataset.graph;
    println!("graph: {} (labels: {})", graph.stats(), graph.num_labels());

    let config = PaneConfig::builder()
        .dimension(64)
        .threads(2)
        .seed(4)
        .build();
    let embedding = Pane::new(config).embed(graph).expect("embed");
    println!("embedded in {:.2}s", embedding.timings.total_secs());

    let scorer = PaneScorer::new(&embedding);
    let opts = NodeClassOptions {
        repeats: 3,
        seed: 9,
        ..Default::default()
    };
    let sweep = classification_sweep(
        &scorer,
        graph.labels(),
        graph.num_labels(),
        &[0.1, 0.3, 0.5, 0.7, 0.9],
        &opts,
    );

    println!("\ntrain%   micro-F1   macro-F1");
    for (frac, r) in sweep {
        println!(
            "{:>5.0}%   {:>8.3}   {:>8.3}",
            frac * 100.0,
            r.micro_f1,
            r.macro_f1
        );
    }
}
