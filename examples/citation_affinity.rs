//! Attribute inference on a citation-network analogue — the paper's
//! motivating scenario: predict which (hidden) keywords a paper relates
//! to, using both its own text and its multi-hop citation neighborhood.
//!
//! ```sh
//! cargo run --release --example citation_affinity
//! ```

use pane::pane_eval::scoring::PaneScorer;
use pane::pane_eval::split::split_attribute_entries;
use pane::pane_eval::tasks::evaluate_attr_scorer;
use pane::prelude::*;

fn main() {
    // A Citeseer-like directed citation graph with bag-of-words attributes.
    let dataset = DatasetZoo::CiteseerLike.generate_scaled(0.5, 11);
    let graph = &dataset.graph;
    println!("graph: {}", graph.stats());

    // Hide 20% of the (paper, keyword) associations.
    let split = split_attribute_entries(graph, 0.2, 3);
    println!(
        "hidden {} associations; training on the remaining {}",
        split.test_entries.len(),
        split.residual.num_attribute_entries()
    );

    // Embed the residual graph.
    let config = PaneConfig::builder()
        .dimension(64)
        .threads(2)
        .seed(1)
        .build();
    let embedding = Pane::new(config).embed(&split.residual).expect("embed");

    // Rank hidden positives against sampled negatives with Eq. (21).
    let scorer = PaneScorer::new(&embedding);
    let result = evaluate_attr_scorer(&scorer, &split);
    println!("attribute inference: {result}");

    // Show the top predicted keywords for one paper, next to the truth.
    let (v, _) = (split.test_entries[0].0 as usize, ());
    let mut scored: Vec<(usize, f64)> = (0..graph.num_attributes())
        .map(|r| (r, embedding.attribute_score(v, r)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let truth: Vec<usize> = {
        let (attrs, _) = graph.node_attributes(v);
        attrs.iter().map(|&a| a as usize).collect()
    };
    println!("\npaper v{v}: true keywords {truth:?}");
    println!("top-10 predicted keywords:");
    for (r, s) in scored.iter().take(10) {
        let marker = if truth.contains(r) { " <- true" } else { "" };
        println!("  r{r}: {s:.3}{marker}");
    }
}
