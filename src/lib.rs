//! # PANE — Scaling Attributed Network Embedding to Massive Graphs
//!
//! Facade crate for the Rust reproduction of the VLDB 2020 paper
//! *"Scaling Attributed Network Embedding to Massive Graphs"* (Yang et al.).
//!
//! PANE maps every node of an attributed, directed graph to a **forward**
//! embedding `X_f[v]` and a **backward** embedding `X_b[v]`, and every
//! attribute to an embedding `Y[r]`, such that dot products approximate
//! multi-hop node–attribute affinity in both edge directions (shifted
//! pointwise mutual information of a random-walk-with-restart co-occurrence
//! model).
//!
//! ## Quick start
//!
//! ```
//! use pane::prelude::*;
//!
//! // A small synthetic attributed graph (directed SBM with attribute clusters).
//! let graph = DatasetZoo::CoraLike.generate_scaled(0.1, 7).graph;
//!
//! // Embed with the paper's default hyper-parameters (scaled-down k).
//! let cfg = PaneConfig::builder()
//!     .dimension(32)
//!     .alpha(0.5)
//!     .error_threshold(0.015)
//!     .threads(2)
//!     .seed(42)
//!     .build();
//! let emb = Pane::new(cfg).embed(&graph).unwrap();
//!
//! assert_eq!(emb.forward.rows(), graph.num_nodes());
//! assert_eq!(emb.attribute.rows(), graph.num_attributes());
//!
//! // Score node–attribute affinity (attribute inference, Eq. 21).
//! let s = emb.attribute_score(0, 0);
//! assert!(s.is_finite());
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`pane_graph`] | attributed graph type, loaders, generators, random-walk simulator |
//! | [`pane_sparse`] | CSR/CSC sparse matrices, (parallel) sparse × dense products |
//! | [`pane_linalg`] | dense matrices, QR, Jacobi SVD, randomized SVD |
//! | [`pane_core`] | the PANE algorithms: APMI, GreedyInit, SVDCCD and parallel variants |
//! | [`pane_index`] | ANN serving layer: exact / IVF / HNSW vector indexes over the embeddings |
//! | [`pane_store`] | durable store layer: insert-ahead log, generation snapshots, sharded roots |
//! | [`pane_serve`] | shared-index serving daemon: JSON-lines protocol, durable incremental inserts |
//! | [`pane_obs`] | observability: atomic metrics registry, JSON-lines tracing, slow-query log |
//! | [`pane_eval`] | attribute inference / link prediction / node classification + metrics |
//! | [`pane_baselines`] | competitor stand-ins (NRP-, TADW-, CAN-, BLA-like, SVD baselines, PANE-R) |
//! | [`pane_datasets`] | the eight dataset analogues of Table 3 |
//! | [`pane_parallel`] | block partitioning and scoped worker fan-out |
//!
//! See `ARCHITECTURE.md` at the repository root for the full data-flow
//! picture (embed → persist → index → serve) and the determinism contract.

pub use pane_baselines;
pub use pane_core;
pub use pane_datasets;
pub use pane_eval;
pub use pane_graph;
pub use pane_index;
pub use pane_linalg;
pub use pane_obs;
pub use pane_parallel;
pub use pane_serve;
pub use pane_sparse;
pub use pane_store;

/// Most-used items, re-exported for `use pane::prelude::*`.
pub mod prelude {
    pub use pane_core::{
        load_binary as load_embedding_binary, save_binary as save_embedding_binary,
    };
    pub use pane_core::{
        EmbeddingQuery, InitStrategy, Pane, PaneConfig, PaneEmbedding, QueryBackend,
    };
    pub use pane_datasets::{DatasetZoo, GeneratedDataset};
    pub use pane_eval::metrics::{average_precision, roc_auc};
    pub use pane_eval::{report_card, ReportOptions};
    pub use pane_graph::{AttributedGraph, GraphBuilder};
    pub use pane_index::{
        DeltaIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, VectorIndex,
    };
    pub use pane_linalg::DenseMatrix;
    pub use pane_serve::{IndexSpec, ServeBackend, ServeEngine, ShardedEngine};
    pub use pane_sparse::CsrMatrix;
    pub use pane_store::{ShardedStore, Store};
}
